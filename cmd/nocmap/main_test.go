package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/model"
)

func TestParseMeshExplicit(t *testing.T) {
	m, err := parseMesh("3x2", "mesh", 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if m.W() != 3 || m.H() != 2 {
		t.Fatalf("mesh = %dx%d", m.W(), m.H())
	}
}

func TestParseMeshAuto(t *testing.T) {
	cases := []struct{ cores, w, h int }{
		{4, 2, 2},
		{5, 3, 2},
		{9, 3, 3},
		{10, 4, 3},
		{1, 1, 1},
	}
	for _, tc := range cases {
		m, err := parseMesh("", "mesh", 0, tc.cores)
		if err != nil {
			t.Fatalf("cores %d: %v", tc.cores, err)
		}
		if m.W() != tc.w || m.H() != tc.h {
			t.Errorf("cores %d: mesh %dx%d, want %dx%d", tc.cores, m.W(), m.H(), tc.w, tc.h)
		}
		if m.NumTiles() < tc.cores {
			t.Errorf("cores %d: mesh too small", tc.cores)
		}
	}
}

func TestParseMesh3D(t *testing.T) {
	m, err := parseMesh("2x3x4", "mesh", 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if m.W() != 2 || m.H() != 3 || m.D() != 4 {
		t.Fatalf("mesh = %dx%dx%d", m.W(), m.H(), m.D())
	}
	// -depth stacks a planar spec...
	m, err = parseMesh("2x2", "torus", 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if m.D() != 4 || m.Kind().String() != "torus" {
		t.Fatalf("mesh = %dx%dx%d %s", m.W(), m.H(), m.D(), m.Kind())
	}
	// ...and must agree with an explicit WxHxD spec.
	if _, err := parseMesh("2x2x2", "mesh", 4, 5); err == nil {
		t.Fatal("conflicting -depth accepted")
	}
	if _, err := parseMesh("2x2", "klein-bottle", 0, 4); err == nil {
		t.Fatal("unknown topology accepted")
	}
}

func TestRunDemo3DEndToEnd(t *testing.T) {
	// The paper demo on a 2x1x2 stacked mesh with XYZ routing, plus
	// diagrams, exercises the TSV path through the whole CLI.
	if err := run("", true, "2x1x2", "mesh", 0, "cdcm", "es", "0.07um", "xyz", 1, true, true, 1, 2, 2); err != nil {
		t.Fatal(err)
	}
	if err := run("", true, "2x2", "torus", 2, "cwm", "sa", "0.07um", "zyx", 1, false, false, 1, 2, 2); err != nil {
		t.Fatal(err)
	}
}

func TestParseMeshAutoWithDepth(t *testing.T) {
	// Auto-sizing spreads the cores over the requested layers instead of
	// replicating a full planar grid per layer: 16 cores at depth 4 fit a
	// 2x2x4 (16 tiles), not a 4x4x4.
	m, err := parseMesh("", "mesh", 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	if m.W() != 2 || m.H() != 2 || m.D() != 4 {
		t.Fatalf("mesh = %dx%dx%d, want 2x2x4", m.W(), m.H(), m.D())
	}
	// Non-dividing core counts still fit: 10 cores over 4 layers needs
	// 3 per layer -> 2x2 layers, 16 tiles.
	m, err = parseMesh("", "mesh", 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumTiles() < 10 || m.D() != 4 {
		t.Fatalf("mesh = %dx%dx%d does not fit 10 cores over 4 layers", m.W(), m.H(), m.D())
	}
}

func TestParseMeshErrors(t *testing.T) {
	for _, spec := range []string{"3", "ax2", "3xb", "0x4", "4x4junk", "2x2x4.5", " 2x2", "2x2x2x2"} {
		if _, err := parseMesh(spec, "mesh", 0, 2); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
	if _, err := parseMesh("2x2", "mesh", 0, 5); err == nil {
		t.Error("oversubscribed mesh accepted")
	}
}

func TestRunDemoEndToEnd(t *testing.T) {
	// Full CLI path: demo app, ES search, paper tech, with diagrams.
	if err := run("", true, "2x2", "mesh", 0, "cdcm", "es", "paper", "xy", 1, true, true, 1, 2, 2); err != nil {
		t.Fatal(err)
	}
	// CWM path too.
	if err := run("", true, "2x2", "mesh", 0, "cwm", "sa", "0.07um", "yx", 1, false, false, 16, 2, 2); err != nil {
		t.Fatal(err)
	}
}

func TestRunFromTextAndJSONFiles(t *testing.T) {
	dir := t.TempDir()
	text := filepath.Join(dir, "app.cdcg")
	if err := os.WriteFile(text, []byte(
		"name t\ncores a b\npacket p1 a b compute=2 bits=9\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(text, false, "2x1", "mesh", 0, "cdcm", "es", "paper", "xy", 1, false, false, 1, 2, 2); err != nil {
		t.Fatalf("text app: %v", err)
	}
	jsonPath := filepath.Join(dir, "app.json")
	var buf bytes.Buffer
	if err := model.PaperExampleCDCG().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(jsonPath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(jsonPath, false, "2x2", "mesh", 0, "cwm", "sa", "0.35um", "xy", 1, false, false, 1, 2, 2); err != nil {
		t.Fatalf("json app: %v", err)
	}
	// A JSON payload under a text extension must be rejected cleanly.
	badPath := filepath.Join(dir, "bad.cdcg")
	if err := os.WriteFile(badPath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(badPath, false, "2x2", "mesh", 0, "cdcm", "sa", "paper", "xy", 1, false, false, 1, 2, 2); err == nil {
		t.Fatal("JSON-in-text accepted")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	cases := []struct {
		name string
		err  func() error
	}{
		{"no app", func() error { return run("", false, "", "mesh", 0, "cdcm", "sa", "paper", "xy", 1, false, false, 1, 2, 2) }},
		{"bad model", func() error { return run("", true, "", "mesh", 0, "xxx", "sa", "paper", "xy", 1, false, false, 1, 2, 2) }},
		{"bad method", func() error { return run("", true, "", "mesh", 0, "cdcm", "xxx", "paper", "xy", 1, false, false, 1, 2, 2) }},
		{"bad tech", func() error { return run("", true, "", "mesh", 0, "cdcm", "sa", "90nm", "xy", 1, false, false, 1, 2, 2) }},
		{"bad routing", func() error { return run("", true, "", "mesh", 0, "cdcm", "sa", "paper", "zz", 1, false, false, 1, 2, 2) }},
		{"missing file", func() error {
			return run("/nonexistent.json", false, "", "mesh", 0, "cdcm", "sa", "paper", "xy", 1, false, false, 1, 2, 2)
		}},
	}
	for _, tc := range cases {
		if tc.err() == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}
