// Command nocmap maps one application onto a mesh or torus NoC, planar
// or 3-D.
//
// The application is a CDCG in JSON (see internal/model; cmd/nocgen
// produces them), or the built-in paper example with -demo. Examples:
//
//	nocmap -app app.json -mesh 3x3 -model cdcm -method sa -seed 7 -gantt
//	nocmap -app app.json -mesh 2x2x4 -routing xyz -model cdcm
//
// The first explores a 3x3 mesh under the CDCM objective with simulated
// annealing and prints the winning mapping, its metrics and a timing
// diagram; the second explores a 2x2x4 stacked mesh with dimension-ordered
// XYZ routing (vertical TSV links priced by the 3-D energy/latency
// profile). -depth D stacks a planar -mesh into D layers; -topology torus
// wraps every dimension.
//
// Explorations under -model cwm price candidate swaps incrementally
// (search.DeltaObjective: O(deg) per proposed move instead of re-walking
// the whole communication graph) with bit-identical results; -model cdcm
// always runs the full wormhole simulation per candidate, which is the
// model's point.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/model"
	"repro/internal/noc"
	"repro/internal/topology"
	"repro/internal/trace"
)

func main() {
	var (
		appPath  = flag.String("app", "", "CDCG JSON file (or use -demo)")
		demo     = flag.Bool("demo", false, "use the paper's Figure-1 example application")
		meshSpec = flag.String("mesh", "", "grid dimensions WxH or WxHxD (default: smallest square fitting the cores)")
		depth    = flag.Int("depth", 0, "stack a WxH -mesh into D layers (alternative to the WxHxD spec; 0 = 1 layer)")
		topo     = flag.String("topology", "mesh", "grid family: mesh or torus")
		modelSel = flag.String("model", "cdcm", "mapping model: cwm or cdcm")
		method   = flag.String("method", "sa", "search method: sa, es, random, hill, tabu")
		seed     = flag.Int64("seed", 1, "search seed")
		techSel  = flag.String("tech", "0.07um", "technology profile: 0.35um, 0.07um or paper")
		routing  = flag.String("routing", "xy", "routing algorithm: xy, yx, xyz or zyx")
		gantt    = flag.Bool("gantt", false, "print the timing diagram of the winning mapping")
		annotate = flag.Bool("annotate", false, "print per-resource occupancy annotations")
		flits    = flag.Int("flitbits", 1, "link width in bits per flit")
		restarts = flag.Int("restarts", 1, "independent SA restarts (seeds seed..seed+n-1, best wins)")
		workers  = flag.Int("workers", runtime.NumCPU(), "parallel worker goroutines (results are seed-deterministic for any value)")
	)
	flag.Parse()
	if err := run(*appPath, *demo, *meshSpec, *topo, *depth, *modelSel, *method, *techSel, *routing,
		*seed, *gantt, *annotate, *flits, *restarts, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "nocmap:", err)
		os.Exit(1)
	}
}

func run(appPath string, demo bool, meshSpec, topo string, depth int, modelSel, method, techSel, routing string,
	seed int64, gantt, annotate bool, flits, restarts, workers int) error {

	var g *model.CDCG
	switch {
	case demo:
		g = model.PaperExampleCDCG()
	case appPath != "":
		f, err := os.Open(appPath)
		if err != nil {
			return err
		}
		defer f.Close()
		// JSON by extension; the line-oriented text format otherwise
		// (see internal/model/text.go for its grammar).
		if strings.HasSuffix(appPath, ".json") {
			g, err = model.ReadCDCG(f)
		} else {
			g, err = model.ParseText(f)
		}
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("need -app FILE or -demo")
	}

	mesh, err := parseMesh(meshSpec, topo, depth, g.NumCores())
	if err != nil {
		return err
	}
	cfg := noc.Default()
	cfg.FlitBits = flits
	if cfg.Routing, err = topology.ParseRoutingAlgo(routing); err != nil {
		return err
	}

	var tech energy.Tech
	switch techSel {
	case "0.35um":
		tech = energy.Tech035
	case "0.07um":
		tech = energy.Tech007
	case "paper":
		tech = energy.PaperExample()
	default:
		return fmt.Errorf("unknown tech %q", techSel)
	}

	strategy, err := core.ParseStrategy(modelSel)
	if err != nil {
		return err
	}
	m, err := core.ParseMethod(method)
	if err != nil {
		return err
	}

	res, err := core.Explore(strategy, mesh, cfg, tech, g,
		core.Options{Method: m, Seed: seed, Restarts: restarts, Workers: workers})
	if err != nil {
		return err
	}

	fmt.Printf("application: %s (%d cores, %d packets, %d bits)\n",
		appName(g), g.NumCores(), g.NumPackets(), g.TotalBits())
	dims := fmt.Sprintf("%dx%d", mesh.W(), mesh.H())
	if mesh.D() > 1 {
		dims = fmt.Sprintf("%dx%dx%d", mesh.W(), mesh.H(), mesh.D())
	}
	fmt.Printf("NoC: %s %s, %s routing, %d-bit flits; model %s, search %s (seed %d)\n",
		dims, mesh.Kind(), cfg.Routing, cfg.FlitBits, strategy, m, seed)
	fmt.Printf("evaluations: %d, best cost: %.6g pJ\n", res.Search.Evaluations, res.Search.BestCost*1e12)
	fmt.Println("mapping:")
	fmt.Print(trace.MappingGrid(mesh, g.CoreName, res.Best))
	met := res.Metrics
	fmt.Printf("texec = %d cycles (%.4g ns), contention = %d cycles\n",
		met.ExecCycles, met.ExecNS, met.ContentionCycles)
	fmt.Printf("energy (%s): dynamic %.6g pJ + static %.6g pJ = %.6g pJ (static share %.1f %%)\n",
		tech.Name, met.Energy.Dynamic*1e12, met.Energy.Static*1e12,
		met.Total()*1e12, met.Energy.StaticShare()*100)

	if gantt || annotate {
		cdcm, err := core.NewCDCM(mesh, cfg, tech, g)
		if err != nil {
			return err
		}
		cdcm.Simulator().RecordOccupancy = true
		raw, _, err := cdcm.Simulate(res.Best)
		if err != nil {
			return err
		}
		if gantt {
			fmt.Println()
			fmt.Print(trace.Gantt(g, cfg, raw, 100))
		}
		if annotate {
			fmt.Println()
			fmt.Print(trace.AnnotateSchedule(mesh, g, res.Best, raw))
		}
	}
	return nil
}

func appName(g *model.CDCG) string {
	if g.Name != "" {
		return g.Name
	}
	return "(unnamed)"
}

// parseMesh parses "WxH" or "WxHxD" (optionally stacked deeper by the
// -depth flag and wrapped by -topology torus), or picks the smallest
// grid fitting the cores when spec is empty: near-square layers, spread
// over -depth layers when given (so 16 cores with -depth 4 auto-size to
// 2x2x4, not a 4x4 layer replicated 4 times).
func parseMesh(spec, topo string, depth, cores int) (*topology.Mesh, error) {
	torus := false
	switch topo {
	case "", "mesh":
	case "torus":
		torus = true
	default:
		return nil, fmt.Errorf("unknown topology %q (want mesh or torus)", topo)
	}
	var w, h, d int
	if spec == "" {
		d = 1
		if depth > 0 {
			d = depth
		}
		perLayer := (cores + d - 1) / d
		w = 1
		for w*w < perLayer {
			w++
		}
		h = w
		for (h-1)*w >= perLayer {
			h--
		}
	} else {
		var err error
		if w, h, d, err = topology.ParseGridSpec(spec); err != nil {
			return nil, err
		}
		if depth > 0 {
			if d > 1 && depth != d {
				return nil, fmt.Errorf("-depth %d conflicts with mesh spec %q", depth, spec)
			}
			d = depth
		}
	}
	var mesh *topology.Mesh
	var err error
	if torus {
		mesh, err = topology.NewTorus3D(w, h, d)
	} else {
		mesh, err = topology.NewMesh3D(w, h, d)
	}
	if err != nil {
		return nil, err
	}
	if cores > mesh.NumTiles() {
		return nil, fmt.Errorf("%d cores do not fit on %d tiles (%s)", cores, mesh.NumTiles(), spec)
	}
	return mesh, nil
}
