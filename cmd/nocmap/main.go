// Command nocmap maps one application onto a mesh or torus NoC, planar
// or 3-D.
//
// The application is a CDCG in JSON (see internal/model; cmd/nocgen
// produces them) or in the line-oriented text format, or the built-in
// paper example with -demo. Input format is sniffed from the content by
// default (-format auto), so extension-less and piped files work; -app -
// reads standard input. Examples:
//
//	nocmap -app app.json -mesh 3x3 -model cdcm -method sa -seed 7 -gantt
//	nocmap -app app.json -mesh 2x2x4 -routing xyz -model cdcm
//	nocmap -demo -mesh 3x3 -model resilience -faultrate 0.15 -faultseed 2
//	nocgen -seed 3 | nocmap -app - -json
//
// The first explores a 3x3 mesh under the CDCM objective with simulated
// annealing and prints the winning mapping, its metrics and a timing
// diagram; the second explores a 2x2x4 stacked mesh with dimension-ordered
// XYZ routing (vertical TSV links priced by the 3-D energy/latency
// profile). -depth D stacks a planar -mesh into D layers; -topology torus
// wraps every dimension.
//
// -json emits the machine-readable result instead of the human report —
// the exact schema the nocd daemon serves (internal/service.Result), so
// CLI runs and daemon jobs are directly comparable; for a fixed instance
// and seed the result object is byte-identical between the two.
//
// Explorations under -model cwm price candidate swaps incrementally
// (search.DeltaObjective: O(deg) per proposed move instead of re-walking
// the whole communication graph) with bit-identical results; -model cdcm
// always runs the full wormhole simulation per candidate, which is the
// model's point.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/service"
	"repro/internal/topology"
	"repro/internal/trace"
)

// options collects the CLI flags; run is kept flag-free so tests drive it
// directly.
type options struct {
	appPath    string
	demo       bool
	mesh       string
	topo       string
	depth      int
	model      string
	method     string
	tech       string
	routing    string
	seed       int64
	gantt      bool
	annotate   bool
	jsonOut    bool
	format     string
	flits      int
	restarts   int
	frontSize  int
	faultRate  float64
	faultSeed  int64
	greedySeed bool
	surrogate  bool
	surrSamp   int
	workers    int
	cpuProfile string
	memProfile string
	stdin      io.Reader
	stdout     io.Writer
}

func main() {
	var o options
	flag.StringVar(&o.appPath, "app", "", "CDCG file, - for stdin (or use -demo)")
	flag.BoolVar(&o.demo, "demo", false, "use the paper's Figure-1 example application")
	flag.StringVar(&o.mesh, "mesh", "", "grid dimensions WxH or WxHxD (default: smallest square fitting the cores)")
	flag.IntVar(&o.depth, "depth", 0, "stack a WxH -mesh into D layers (alternative to the WxHxD spec; 0 = 1 layer)")
	flag.StringVar(&o.topo, "topology", "mesh", "grid family: mesh or torus")
	flag.StringVar(&o.model, "model", "cdcm", "mapping model: cwm, cdcm, pareto (multi-objective front) or resilience (fault-aware, needs -faultrate)")
	flag.StringVar(&o.method, "method", "sa", "search method: sa, es, random, hill, tabu (ignored by -model pareto)")
	flag.Int64Var(&o.seed, "seed", 1, "search seed")
	flag.StringVar(&o.tech, "tech", "0.07um", "technology profile: 0.35um, 0.07um or paper")
	flag.StringVar(&o.routing, "routing", "xy", "routing algorithm: xy, yx, xyz, zyx or fa (fault-aware table routing)")
	flag.BoolVar(&o.gantt, "gantt", false, "print the timing diagram of the winning mapping")
	flag.BoolVar(&o.annotate, "annotate", false, "print per-resource occupancy annotations")
	flag.BoolVar(&o.jsonOut, "json", false, "emit the machine-readable result (same schema as the nocd daemon)")
	flag.StringVar(&o.format, "format", "auto", "input format of -app: auto (content sniffing), json or text")
	flag.IntVar(&o.flits, "flitbits", 1, "link width in bits per flit")
	flag.IntVar(&o.restarts, "restarts", 1, "independent SA restarts (seeds seed..seed+n-1, best wins); pareto walks when -model pareto")
	flag.IntVar(&o.frontSize, "frontsize", 0, "bound on the Pareto front of -model pareto (0 = engine default)")
	flag.Float64Var(&o.faultRate, "faultrate", 0, "inject link faults: per-link failure probability (deterministic under -faultseed)")
	flag.Int64Var(&o.faultSeed, "faultseed", 0, "fault-injection seed for -faultrate")
	flag.BoolVar(&o.greedySeed, "greedy", false, "warm-start the search with the deterministic highest-traffic-first placement")
	flag.BoolVar(&o.surrogate, "surrogate", false, "rank SA/pareto candidates on a calibrated surrogate (tier B); survivors and all reported results are exact-repriced")
	flag.IntVar(&o.surrSamp, "surrsamples", 0, "exact simulations used to calibrate the -surrogate predictor (0 = default budget)")
	flag.IntVar(&o.workers, "workers", runtime.NumCPU(), "parallel worker goroutines (results are seed-deterministic for any value)")
	flag.StringVar(&o.cpuProfile, "cpuprofile", "", "write a CPU profile of the exploration to this file")
	flag.StringVar(&o.memProfile, "memprofile", "", "write a heap profile (taken after the run) to this file")
	flag.Parse()
	o.stdin = os.Stdin
	o.stdout = os.Stdout
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "nocmap:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	if o.stdout == nil {
		o.stdout = os.Stdout
	}
	if o.jsonOut && (o.gantt || o.annotate) {
		return fmt.Errorf("-json cannot be combined with -gantt or -annotate (diagrams are not part of the JSON schema)")
	}
	switch o.format {
	case "", "auto", "json", "text":
	default:
		// Validated up front so a typo surfaces even on the -demo path,
		// which never reads an input file.
		return fmt.Errorf("unknown -format %q (want auto, json or text)", o.format)
	}
	var g *model.CDCG
	var err error
	switch {
	case o.demo:
		g = model.PaperExampleCDCG()
	case o.appPath != "":
		if g, err = readApp(o.appPath, o.format, o.stdin); err != nil {
			return err
		}
	default:
		return fmt.Errorf("need -app FILE or -demo")
	}

	// Resolve flags exactly like a daemon request — one shared validation
	// and defaulting path for CLI and service.
	req := service.Request{
		App:              g,
		Mesh:             o.mesh,
		Topology:         o.topo,
		Depth:            o.depth,
		Routing:          o.routing,
		FlitBits:         o.flits,
		Tech:             o.tech,
		Model:            o.model,
		Method:           o.method,
		Seed:             o.seed,
		Restarts:         o.restarts,
		FrontSize:        o.frontSize,
		FaultRate:        o.faultRate,
		FaultSeed:        o.faultSeed,
		GreedySeed:       o.greedySeed,
		Surrogate:        o.surrogate,
		SurrogateSamples: o.surrSamp,
		Workers:          o.workers,
	}
	in, err := req.Resolve()
	if err != nil {
		// The service prefix is HTTP-facing noise on a CLI.
		return errors.New(strings.TrimPrefix(err.Error(), service.ErrBadRequest.Error()+": "))
	}

	if o.cpuProfile != "" {
		f, err := os.Create(o.cpuProfile)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if o.memProfile != "" {
		// Created eagerly so a bad path fails the run up front; the
		// profile itself is written after the exploration completes.
		f, err := os.Create(o.memProfile)
		if err != nil {
			return fmt.Errorf("-memprofile: %w", err)
		}
		defer func() {
			runtime.GC() // settle allocations so the profile shows live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "nocmap: -memprofile:", err)
			}
			f.Close()
		}()
	}

	start := time.Now()
	res, err := in.Explore(nil, nil, nil, nil)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	if o.jsonOut {
		return service.WriteCLI(o.stdout, service.NewResult(in, res), elapsed)
	}

	fmt.Fprintf(o.stdout, "application: %s (%d cores, %d packets, %d bits)\n",
		appName(g), g.NumCores(), g.NumPackets(), g.TotalBits())
	mesh := in.Mesh
	dims := fmt.Sprintf("%dx%d", mesh.W(), mesh.H())
	if mesh.D() > 1 {
		dims = fmt.Sprintf("%dx%dx%d", mesh.W(), mesh.H(), mesh.D())
	}
	fmt.Fprintf(o.stdout, "NoC: %s %s, %s routing, %d-bit flits; model %s, search %s (seed %d)\n",
		dims, mesh.Kind(), in.Cfg.Routing, in.Cfg.FlitBits, in.Strategy, in.Method, o.seed)
	fmt.Fprintf(o.stdout, "evaluations: %d, best cost: %.6g pJ\n", res.Search.Evaluations, res.Search.BestCost*1e12)
	fmt.Fprintln(o.stdout, "mapping:")
	fmt.Fprint(o.stdout, trace.MappingGrid(mesh, g.CoreName, res.Best))
	met := res.Metrics
	fmt.Fprintf(o.stdout, "texec = %d cycles (%.4g ns), contention = %d cycles\n",
		met.ExecCycles, met.ExecNS, met.ContentionCycles)
	fmt.Fprintf(o.stdout, "energy (%s): dynamic %.6g pJ + static %.6g pJ = %.6g pJ (static share %.1f %%)\n",
		in.Tech.Name, met.Energy.Dynamic*1e12, met.Energy.Static*1e12,
		met.Total()*1e12, met.Energy.StaticShare()*100)

	if res.Front != nil {
		fmt.Fprintf(o.stdout, "\nPareto front (%d points, axes %s):\n",
			len(res.Front.Points), strings.Join(res.Front.Axes, ", "))
		headers := append(append([]string{"#"}, res.Front.Axes...), "ENoC (pJ)", "mapping")
		rows := make([][]string, len(res.Front.Points))
		for i, p := range res.Front.Points {
			row := []string{fmt.Sprintf("%d", i+1)}
			for _, c := range p.Components {
				row = append(row, fmt.Sprintf("%.6g", c))
			}
			row = append(row, fmt.Sprintf("%.6g", p.Cost*1e12), p.Mapping.String())
			rows[i] = row
		}
		fmt.Fprint(o.stdout, trace.Table(headers, rows))
	}

	if sc := res.Resilience; sc != nil {
		fmt.Fprintf(o.stdout, "\nresilience over faults [%s]: score %.1f, worst fault %s (texec %d cycles, +%d), %d unreachable\n",
			sc.FaultKey, sc.Score, sc.WorstElement, sc.WorstExecCycles, sc.WorstExecCycles-sc.BaseExecCycles, sc.Unreachable)
		headers := []string{"element", "texec (cy)", "dt (cy)", "dE (pJ)", "note"}
		rows := make([][]string, len(sc.Impacts))
		for i, imp := range sc.Impacts {
			note := ""
			if imp.Unreachable {
				note = "unreachable (penalised)"
			}
			rows[i] = []string{imp.Element, fmt.Sprint(imp.ExecCycles),
				fmt.Sprint(imp.DeltaCycles), fmt.Sprintf("%.5g", imp.DeltaJ*1e12), note}
		}
		fmt.Fprint(o.stdout, trace.Table(headers, rows))
		for _, rec := range sc.Recommendations {
			fmt.Fprintf(o.stdout, "note: %s\n", rec)
		}
	}

	if o.gantt || o.annotate {
		cdcm, err := core.NewCDCM(mesh, in.Cfg, in.Tech, g)
		if err != nil {
			return err
		}
		cdcm.Simulator().RecordOccupancy = true
		raw, _, err := cdcm.Simulate(res.Best)
		if err != nil {
			return err
		}
		if o.gantt {
			fmt.Fprintln(o.stdout)
			fmt.Fprint(o.stdout, trace.Gantt(g, in.Cfg, raw, 100))
		}
		if o.annotate {
			fmt.Fprintln(o.stdout)
			fmt.Fprint(o.stdout, trace.AnnotateSchedule(mesh, g, res.Best, raw))
		}
	}
	return nil
}

func appName(g *model.CDCG) string {
	if g.Name != "" {
		return g.Name
	}
	return "(unnamed)"
}

// readApp loads the application from a file or stdin ("-") in the given
// format: "json", "text", or "auto"/"" — extension first (.json), then a
// content sniff, so extension-less and piped files decode correctly.
func readApp(path, format string, stdin io.Reader) (*model.CDCG, error) {
	if path == "-" {
		if stdin == nil {
			stdin = os.Stdin
		}
		return decodeApp(stdin, "", format)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return decodeApp(f, path, format)
}

func decodeApp(r io.Reader, name, format string) (*model.CDCG, error) {
	switch format {
	case "json":
		return model.ReadCDCG(r)
	case "text":
		return model.ParseText(r)
	case "", "auto":
		if strings.HasSuffix(name, ".json") {
			return model.ReadCDCG(r)
		}
		br := bufio.NewReader(r)
		isJSON, err := sniffJSON(br)
		if err != nil {
			return nil, err
		}
		if isJSON {
			return model.ReadCDCG(br)
		}
		return model.ParseText(br)
	default:
		return nil, fmt.Errorf("unknown -format %q (want auto, json or text)", format)
	}
}

// sniffJSON reports whether the stream opens (after whitespace) with '{'
// — a CDCG JSON object; the line-oriented text grammar starts with a
// directive word. Leading whitespace is consumed (it is insignificant to
// both grammars), which keeps the sniff independent of the reader's
// buffer size; the deciding byte is unread.
func sniffJSON(br *bufio.Reader) (bool, error) {
	for {
		c, err := br.ReadByte()
		if err == io.EOF {
			return false, nil // empty input: let the text parser report it
		}
		if err != nil {
			return false, err
		}
		switch c {
		case ' ', '\t', '\r', '\n':
			continue
		default:
			return c == '{', br.UnreadByte()
		}
	}
}

// parseMesh resolves a grid spec exactly like the daemon does; kept as a
// named function because the spec grammar is part of nocmap's CLI
// contract (and its tests).
func parseMesh(spec, topo string, depth, cores int) (*topology.Mesh, error) {
	return service.ParseMesh(spec, topo, depth, cores)
}
