// Command nocmap maps one application onto a mesh NoC.
//
// The application is a CDCG in JSON (see internal/model; cmd/nocgen
// produces them), or the built-in paper example with -demo. Example:
//
//	nocmap -app app.json -mesh 3x3 -model cdcm -method sa -seed 7 -gantt
//
// explores a 3x3 mesh under the CDCM objective with simulated annealing
// and prints the winning mapping, its metrics and a timing diagram.
//
// Explorations under -model cwm price candidate swaps incrementally
// (search.DeltaObjective: O(deg) per proposed move instead of re-walking
// the whole communication graph) with bit-identical results; -model cdcm
// always runs the full wormhole simulation per candidate, which is the
// model's point.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/model"
	"repro/internal/noc"
	"repro/internal/topology"
	"repro/internal/trace"
)

func main() {
	var (
		appPath  = flag.String("app", "", "CDCG JSON file (or use -demo)")
		demo     = flag.Bool("demo", false, "use the paper's Figure-1 example application")
		meshSpec = flag.String("mesh", "", "mesh dimensions WxH (default: smallest square fitting the cores)")
		modelSel = flag.String("model", "cdcm", "mapping model: cwm or cdcm")
		method   = flag.String("method", "sa", "search method: sa, es, random, hill, tabu")
		seed     = flag.Int64("seed", 1, "search seed")
		techSel  = flag.String("tech", "0.07um", "technology profile: 0.35um, 0.07um or paper")
		routing  = flag.String("routing", "xy", "routing algorithm: xy or yx")
		gantt    = flag.Bool("gantt", false, "print the timing diagram of the winning mapping")
		annotate = flag.Bool("annotate", false, "print per-resource occupancy annotations")
		flits    = flag.Int("flitbits", 1, "link width in bits per flit")
		restarts = flag.Int("restarts", 1, "independent SA restarts (seeds seed..seed+n-1, best wins)")
		workers  = flag.Int("workers", runtime.NumCPU(), "parallel worker goroutines (results are seed-deterministic for any value)")
	)
	flag.Parse()
	if err := run(*appPath, *demo, *meshSpec, *modelSel, *method, *techSel, *routing,
		*seed, *gantt, *annotate, *flits, *restarts, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "nocmap:", err)
		os.Exit(1)
	}
}

func run(appPath string, demo bool, meshSpec, modelSel, method, techSel, routing string,
	seed int64, gantt, annotate bool, flits, restarts, workers int) error {

	var g *model.CDCG
	switch {
	case demo:
		g = model.PaperExampleCDCG()
	case appPath != "":
		f, err := os.Open(appPath)
		if err != nil {
			return err
		}
		defer f.Close()
		// JSON by extension; the line-oriented text format otherwise
		// (see internal/model/text.go for its grammar).
		if strings.HasSuffix(appPath, ".json") {
			g, err = model.ReadCDCG(f)
		} else {
			g, err = model.ParseText(f)
		}
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("need -app FILE or -demo")
	}

	mesh, err := parseMesh(meshSpec, g.NumCores())
	if err != nil {
		return err
	}
	cfg := noc.Default()
	cfg.FlitBits = flits
	if cfg.Routing, err = topology.ParseRoutingAlgo(routing); err != nil {
		return err
	}

	var tech energy.Tech
	switch techSel {
	case "0.35um":
		tech = energy.Tech035
	case "0.07um":
		tech = energy.Tech007
	case "paper":
		tech = energy.PaperExample()
	default:
		return fmt.Errorf("unknown tech %q", techSel)
	}

	strategy, err := core.ParseStrategy(modelSel)
	if err != nil {
		return err
	}
	m, err := core.ParseMethod(method)
	if err != nil {
		return err
	}

	res, err := core.Explore(strategy, mesh, cfg, tech, g,
		core.Options{Method: m, Seed: seed, Restarts: restarts, Workers: workers})
	if err != nil {
		return err
	}

	fmt.Printf("application: %s (%d cores, %d packets, %d bits)\n",
		appName(g), g.NumCores(), g.NumPackets(), g.TotalBits())
	fmt.Printf("NoC: %dx%d mesh, %s routing, %d-bit flits; model %s, search %s (seed %d)\n",
		mesh.W(), mesh.H(), cfg.Routing, cfg.FlitBits, strategy, m, seed)
	fmt.Printf("evaluations: %d, best cost: %.6g pJ\n", res.Search.Evaluations, res.Search.BestCost*1e12)
	fmt.Println("mapping:")
	fmt.Print(trace.MappingGrid(mesh, g.CoreName, res.Best))
	met := res.Metrics
	fmt.Printf("texec = %d cycles (%.4g ns), contention = %d cycles\n",
		met.ExecCycles, met.ExecNS, met.ContentionCycles)
	fmt.Printf("energy (%s): dynamic %.6g pJ + static %.6g pJ = %.6g pJ (static share %.1f %%)\n",
		tech.Name, met.Energy.Dynamic*1e12, met.Energy.Static*1e12,
		met.Total()*1e12, met.Energy.StaticShare()*100)

	if gantt || annotate {
		cdcm, err := core.NewCDCM(mesh, cfg, tech, g)
		if err != nil {
			return err
		}
		cdcm.Simulator().RecordOccupancy = true
		raw, _, err := cdcm.Simulate(res.Best)
		if err != nil {
			return err
		}
		if gantt {
			fmt.Println()
			fmt.Print(trace.Gantt(g, cfg, raw, 100))
		}
		if annotate {
			fmt.Println()
			fmt.Print(trace.AnnotateSchedule(mesh, g, res.Best, raw))
		}
	}
	return nil
}

func appName(g *model.CDCG) string {
	if g.Name != "" {
		return g.Name
	}
	return "(unnamed)"
}

// parseMesh parses "WxH", or picks the smallest near-square mesh fitting
// the cores when spec is empty.
func parseMesh(spec string, cores int) (*topology.Mesh, error) {
	if spec == "" {
		w := 1
		for w*w < cores {
			w++
		}
		h := w
		for (h-1)*w >= cores {
			h--
		}
		return topology.NewMesh(w, h)
	}
	parts := strings.SplitN(strings.ToLower(spec), "x", 2)
	if len(parts) != 2 {
		return nil, fmt.Errorf("mesh spec %q is not WxH", spec)
	}
	var w, h int
	if _, err := fmt.Sscanf(parts[0], "%d", &w); err != nil {
		return nil, fmt.Errorf("mesh width %q: %w", parts[0], err)
	}
	if _, err := fmt.Sscanf(parts[1], "%d", &h); err != nil {
		return nil, fmt.Errorf("mesh height %q: %w", parts[1], err)
	}
	mesh, err := topology.NewMesh(w, h)
	if err != nil {
		return nil, err
	}
	if cores > mesh.NumTiles() {
		return nil, fmt.Errorf("%d cores do not fit on a %s mesh", cores, spec)
	}
	return mesh, nil
}
