// Command nocd is the NoC mapping daemon: it serves the exploration
// framework over an HTTP/JSON API (see internal/service) with a bounded
// job queue, an LRU cache of results keyed by canonical instance hash,
// cancellable searches and progress streaming.
//
//	nocd -addr :8080 &
//	curl -XPOST -d '{"demo":true,"mesh":"2x2","method":"sa","seed":7}' localhost:8080/v1/jobs
//	curl localhost:8080/v1/jobs/j-000001
//	curl localhost:8080/v1/jobs/j-000001/events     # SSE progress stream
//	curl -XDELETE localhost:8080/v1/jobs/j-000001   # cancel
//	curl localhost:8080/healthz
//	curl localhost:8080/metrics                     # Prometheus text exposition
//	curl localhost:8080/metrics?format=json         # legacy JSON counters
//
// Every request carries an X-Request-ID (client-supplied or minted) that
// is echoed on the response, stamped on the job's status and SSE events,
// and attached to every structured log line; -log-level and -log-format
// tune the slog output on stderr.
//
// On SIGTERM/SIGINT the daemon drains: submissions are refused, queued
// and running jobs finish (up to -drain-timeout, then they are canceled),
// and the process exits cleanly.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux, served only when -pprof is set
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/service"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", par.DefaultWorkers(), "compute-pool goroutines shared by all jobs")
		queue     = flag.Int("queue", 64, "bounded job-queue capacity (full queue rejects with 429)")
		cacheSize = flag.Int("cache", 256, "result-cache entries (LRU, keyed by canonical instance hash)")
		drain     = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget before in-flight jobs are canceled")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060); empty disables")
		logLevel  = flag.String("log-level", "info", "structured-log level: debug, info, warn or error")
		logFormat = flag.String("log-format", "text", "structured-log format: text or json")
	)
	flag.Parse()
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	if err := run(*addr, *pprofAddr, *logLevel, *logFormat, *workers, *queue, *cacheSize, *drain, stop, os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "nocd:", err)
		os.Exit(1)
	}
}

// run starts the daemon and blocks until a signal arrives on stop, then
// drains and returns. When ready is non-nil it receives the bound listen
// address once the server accepts connections (tests use it to pick a
// free port with addr "127.0.0.1:0"). A non-empty pprofAddr serves the
// net/http/pprof handlers on a second, separate listener, so profiling
// stays off the API port (and off by default).
func run(addr, pprofAddr, logLevel, logFormat string, workers, queue, cacheSize int, drainTimeout time.Duration,
	stop <-chan os.Signal, logw io.Writer, ready chan<- string) error {

	logger, err := obs.NewLogger(logw, logLevel, logFormat)
	if err != nil {
		return err
	}
	svc := service.New(service.Config{Workers: workers, QueueSize: queue, CacheSize: cacheSize,
		Logger: logger})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if pprofAddr != "" {
		pln, err := net.Listen("tcp", pprofAddr)
		if err != nil {
			ln.Close()
			return fmt.Errorf("pprof listener: %w", err)
		}
		defer pln.Close()
		// DefaultServeMux carries the pprof registrations from the blank
		// import; nothing else is registered on it.
		go http.Serve(pln, nil)
		fmt.Fprintf(logw, "nocd: pprof on http://%s/debug/pprof/\n", pln.Addr())
	}
	httpSrv := &http.Server{
		Handler: svc.Handler(),
		// Bound slow-header connections so they cannot pin goroutines
		// and file descriptors forever; no Read/WriteTimeout because the
		// events endpoint streams for a job's whole lifetime.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	fmt.Fprintf(logw, "nocd: listening on %s (workers=%d queue=%d cache=%d)\n",
		ln.Addr(), workers, queue, cacheSize)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	select {
	case sig := <-stop:
		fmt.Fprintf(logw, "nocd: %v: draining (timeout %s)\n", sig, drainTimeout)
	case err := <-serveErr:
		svc.Shutdown(context.Background())
		return fmt.Errorf("serve: %w", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintf(logw, "nocd: http shutdown: %v\n", err)
	}
	if err := svc.Shutdown(ctx); err != nil {
		fmt.Fprintf(logw, "nocd: drain timeout, in-flight jobs canceled: %v\n", err)
	} else {
		fmt.Fprintln(logw, "nocd: drained cleanly")
	}
	return nil
}
