package main

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/service"
)

// startDaemon runs the daemon exactly as main wires it (minus the signal
// registration) and returns its base URL, the signal channel and the exit
// channel.
func startDaemon(t *testing.T) (url string, stop chan os.Signal, exited chan error) {
	t.Helper()
	stop = make(chan os.Signal, 1)
	ready := make(chan string, 1)
	exited = make(chan error, 1)
	go func() {
		exited <- run("127.0.0.1:0", "", "info", "text", 2, 16, 32, 30*time.Second, stop, io.Discard, ready)
	}()
	select {
	case addr := <-ready:
		return "http://" + addr, stop, exited
	case err := <-exited:
		t.Fatalf("daemon died on startup: %v", err)
		return "", nil, nil
	}
}

func postJSON(t *testing.T, url, body string) service.JobStatus {
	t.Helper()
	resp, err := http.Post(url+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		t.Fatalf("POST: status %d", resp.StatusCode)
	}
	var st service.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestDaemonEndToEndAndSIGTERMDrain(t *testing.T) {
	url, stop, exited := startDaemon(t)

	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	// One fast end-to-end job.
	st := postJSON(t, url, `{"demo":true,"mesh":"2x2","model":"cwm","method":"sa","seed":3}`)
	deadline := time.Now().Add(30 * time.Second)
	for st.State != service.StateSucceeded {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", st.State)
		}
		r, err := http.Get(url + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		time.Sleep(2 * time.Millisecond)
	}
	if len(st.Result) == 0 {
		t.Fatal("succeeded job without result")
	}

	// Put a few-hundred-millisecond job in flight, then SIGTERM: the
	// daemon must drain it (service.TestShutdownDrainsInFlightJobs pins
	// that it completes rather than dies) and exit cleanly while busy.
	postJSON(t, url, `{"demo":true,"mesh":"2x2","model":"cdcm","method":"sa",
		"temp_steps":300,"moves_per_temp":400,"stall_steps":300}`)
	stop <- syscall.SIGTERM
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("daemon never exited after SIGTERM")
	}
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Error("daemon still serving after SIGTERM")
	}
}

func TestDaemonRejectsBadListenAddr(t *testing.T) {
	stop := make(chan os.Signal, 1)
	if err := run("256.256.256.256:1", "", "info", "text", 1, 1, 1, time.Second, stop, io.Discard, nil); err == nil {
		t.Fatal("invalid listen address accepted")
	}
}

func TestDaemonRejectsBadPprofAddr(t *testing.T) {
	stop := make(chan os.Signal, 1)
	if err := run("127.0.0.1:0", "256.256.256.256:1", "info", "text", 1, 1, 1, time.Second, stop, io.Discard, nil); err == nil {
		t.Fatal("invalid pprof address accepted")
	}
}

// lockedBuf is a mutex-guarded log sink: run writes from the daemon
// goroutine, the test reads after ready fires.
type lockedBuf struct {
	mu sync.Mutex
	b  strings.Builder
}

func (l *lockedBuf) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuf) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// TestDaemonServesPprof boots with -pprof bound to an OS-assigned port
// (no probe-close-rebind race) and checks the profile index answers on
// the address the daemon logged.
func TestDaemonServesPprof(t *testing.T) {
	stop := make(chan os.Signal, 1)
	ready := make(chan string, 1)
	exited := make(chan error, 1)
	var logw lockedBuf
	go func() {
		exited <- run("127.0.0.1:0", "127.0.0.1:0", "warn", "text", 1, 4, 8, 30*time.Second, stop, &logw, ready)
	}()
	select {
	case <-ready:
	case err := <-exited:
		t.Fatalf("daemon died on startup: %v", err)
	}
	// run logs the bound pprof address before signalling ready.
	m := regexp.MustCompile(`pprof on (http://[^/]+)/`).FindStringSubmatch(logw.String())
	if m == nil {
		t.Fatalf("pprof address not logged:\n%s", logw.String())
	}
	resp, err := http.Get(m[1] + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatalf("pprof endpoint: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof status %d", resp.StatusCode)
	}
	stop <- syscall.SIGTERM
	if err := <-exited; err != nil {
		t.Fatal(err)
	}
}

func TestDaemonServesMetrics(t *testing.T) {
	url, stop, exited := startDaemon(t)

	// Default: Prometheus text exposition.
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("prometheus content-type = %q", ct)
	}
	if !strings.Contains(string(body), "# TYPE nocd_jobs_submitted_total counter") {
		t.Errorf("prometheus exposition missing nocd_jobs_submitted_total:\n%s", body)
	}

	// Legacy JSON counters stay on ?format=json.
	resp, err = http.Get(url + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]int64
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, ok := m["jobs_submitted"]; !ok {
		t.Errorf("metrics missing jobs_submitted: %v", m)
	}
	stop <- syscall.SIGTERM
	if err := <-exited; err != nil {
		t.Fatal(err)
	}
}

func TestDaemonRejectsBadLogFlags(t *testing.T) {
	stop := make(chan os.Signal, 1)
	if err := run("127.0.0.1:0", "", "loud", "text", 1, 1, 1, time.Second, stop, io.Discard, nil); err == nil {
		t.Fatal("invalid log level accepted")
	}
	if err := run("127.0.0.1:0", "", "info", "xml", 1, 1, 1, time.Second, stop, io.Discard, nil); err == nil {
		t.Fatal("invalid log format accepted")
	}
}
