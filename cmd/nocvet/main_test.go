package main

import (
	"path/filepath"
	"testing"
)

func fixture(elem ...string) string {
	return filepath.Join(append([]string{"..", "..", "internal", "analysis", "testdata", "src"}, elem...)...)
}

// TestSeededViolationFailsGate loads a fixture full of violations: the
// gate must exit 1.
func TestSeededViolationFailsGate(t *testing.T) {
	if code := run([]string{"-run", "detmap", "-dir", fixture("detmap"), "-as", "repro/internal/fixture/detmap"}); code != 1 {
		t.Fatalf("exit = %d, want 1 on seeded violations", code)
	}
}

// TestEngineScopedFixtureFailsGate checks an impersonated engine path
// triggers the path-scoped analyzers through the CLI too.
func TestEngineScopedFixtureFailsGate(t *testing.T) {
	if code := run([]string{"-run", "detsource", "-dir", fixture("detsource"), "-as", "repro/internal/search/fixture"}); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
}

// TestRepoIsClean runs the full suite over the module: the shipped tree
// must pass its own gate.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: loads and type-checks the whole module")
	}
	if code := run([]string{"repro/..."}); code != 0 {
		t.Fatalf("exit = %d, want 0 — the tree no longer passes nocvet", code)
	}
}

// TestUnknownAnalyzer exercises the usage error path.
func TestUnknownAnalyzer(t *testing.T) {
	if code := run([]string{"-run", "nosuch"}); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}
