// Command nocvet runs the repo's project-specific static analyzers —
// detmap, detsource, hotpath, ctxflow and mutexhold — over Go package
// patterns, printing findings in the familiar file:line:col style.
//
// Usage:
//
//	go run ./cmd/nocvet [-tests] [-run name,name] [patterns...]
//
// Patterns default to ./... relative to the current directory. With
// -tests, in-package and external _test.go files are analyzed too.
// -run restricts the suite to a comma-separated subset of analyzer
// names. The -dir/-as pair loads a single fixture directory under an
// impersonated package path (the analysistest harness uses the same
// loader; the flags exist for poking at fixtures by hand).
//
// Exit status: 0 when clean, 1 when findings were reported, 2 when
// loading or analysis itself failed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

var suite = []*analysis.Analyzer{
	analysis.Detmap,
	analysis.Detsource,
	analysis.Hotpath,
	analysis.Ctxflow,
	analysis.Mutexhold,
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("nocvet", flag.ContinueOnError)
	tests := fs.Bool("tests", false, "analyze _test.go files too")
	runFilter := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	dir := fs.String("dir", "", "load a single fixture directory instead of package patterns")
	asPath := fs.String("as", "", "package path the -dir fixture impersonates")
	typeErrs := fs.Bool("typerrors", false, "print type-checker errors encountered while loading")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers, err := selectAnalyzers(*runFilter)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nocvet:", err)
		return 2
	}

	var pkgs []*analysis.Package
	if *dir != "" {
		pkg, err := analysis.LoadDir(*dir, *asPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nocvet:", err)
			return 2
		}
		pkgs = []*analysis.Package{pkg}
	} else {
		pkgs, err = analysis.Load(".", *tests, fs.Args()...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nocvet:", err)
			return 2
		}
	}
	if *typeErrs {
		for _, pkg := range pkgs {
			for _, terr := range pkg.TypeErrors {
				fmt.Fprintf(os.Stderr, "nocvet: %s: %v\n", pkg.PkgPath, terr)
			}
		}
	}

	findings, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nocvet:", err)
		return 2
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "nocvet: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

func selectAnalyzers(filter string) ([]*analysis.Analyzer, error) {
	if filter == "" {
		return suite, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(suite))
	for _, a := range suite {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(filter, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have: detmap, detsource, hotpath, ctxflow, mutexhold)", name)
		}
		out = append(out, a)
	}
	return out, nil
}
