package main

import "testing"

func TestBuildGenerated(t *testing.T) {
	g, err := build("", "chains", "bench", 6, 20, 0, 0, 4000, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "bench" || g.NumPackets() != 20 || g.TotalBits() != 4000 {
		t.Fatalf("generated: %s %d %d", g.Name, g.NumPackets(), g.TotalBits())
	}
	g, err = build("", "phases", "", 8, 32, 0, 0, 8000, 2, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "phases-c8-p32" {
		t.Fatalf("default name = %q", g.Name)
	}
}

func TestBuildEmbedded(t *testing.T) {
	cases := []struct {
		app     string
		cores   int
		packets int
		bits    int64
	}{
		{"romberg", 5, 16, 1600},
		{"fft8", 8, 24, 2400},
		{"fft8-gather", 9, 32, 3200},
		{"objrec", 7, 18, 900},
		{"imgenc", 5, 18, 1800},
	}
	for _, tc := range cases {
		g, err := build(tc.app, "", "", tc.cores, tc.packets, 0, 0, tc.bits, 1, 0)
		if err != nil {
			t.Fatalf("%s: %v", tc.app, err)
		}
		if g.NumPackets() != tc.packets || g.TotalBits() != tc.bits {
			t.Fatalf("%s: %d packets %d bits", tc.app, g.NumPackets(), g.TotalBits())
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s invalid: %v", tc.app, err)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := build("unknown-app", "", "", 4, 8, 0, 0, 100, 1, 0); err == nil {
		t.Error("unknown embedded app accepted")
	}
	if _, err := build("", "spirals", "", 4, 8, 0, 0, 100, 1, 0); err == nil {
		t.Error("unknown mode accepted")
	}
	if _, err := build("", "chains", "", 1, 8, 0, 0, 100, 1, 0); err == nil {
		t.Error("single-core benchmark accepted")
	}
}

func TestMeshTiles(t *testing.T) {
	cases := []struct {
		spec  string
		depth int
		want  int
	}{
		{"3x2", 1, 6},
		{"3x2", 0, 6},
		{"2x2x4", 1, 16},
		{"2x2x4", 9, 16}, // depth ignored for explicit WxHxD
		{"2x2", 4, 16},
	}
	for _, tc := range cases {
		got, err := meshTiles(tc.spec, tc.depth)
		if err != nil {
			t.Fatalf("%q depth %d: %v", tc.spec, tc.depth, err)
		}
		if got != tc.want {
			t.Errorf("%q depth %d = %d tiles, want %d", tc.spec, tc.depth, got, tc.want)
		}
	}
	for _, spec := range []string{"3", "ax2", "2x0x2", "2x2x2x2", "2x2x4.5", "4x4junk"} {
		if _, err := meshTiles(spec, 1); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}
