// Command nocgen generates synthetic CDCG benchmarks (the TGFF-like
// generator of internal/appgen) or exports one of the built-in embedded
// applications, writing the CDCG as JSON to stdout.
//
// Examples:
//
//	nocgen -cores 9 -packets 51 -bits 23244 -seed 7 > bench.json
//	nocgen -mode phases -cores 16 -packets 120 -bits 500000 > bsp.json
//	nocgen -mesh 2x2x4 -packets 64 -bits 24000 > app3d.json   # sized to fill a 3D grid
//	nocgen -embedded fft8 > fft8.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/appgen"
	"repro/internal/apps"
	"repro/internal/model"
	"repro/internal/topology"
)

func main() {
	var (
		cores    = flag.Int("cores", 8, "number of IP cores")
		mesh     = flag.String("mesh", "", "size the benchmark for a WxH or WxHxD grid: overrides -cores with W*H*D")
		depth    = flag.Int("depth", 1, "extra Z depth for -mesh sizing when the spec is WxH (ignored for WxHxD)")
		packets  = flag.Int("packets", 32, "number of CDCG packets")
		bits     = flag.Int64("bits", 10000, "total communicated bits")
		seed     = flag.Int64("seed", 1, "generator seed")
		mode     = flag.String("mode", "chains", "dependence structure: chains or phases")
		chains   = flag.Int("chains", 0, "parallel chains (chains mode; 0 = default)")
		hotspot  = flag.Float64("hotspot", 0, "hotspot destination bias in [0,1)")
		classes  = flag.Int("classes", 0, "quantise volumes into N transfer classes (0 = continuous)")
		name     = flag.String("name", "", "benchmark name")
		embedded = flag.String("embedded", "", "export an embedded app instead: romberg, fft8, fft8-gather, objrec, imgenc")
		format   = flag.String("format", "json", "output format: json or text")
	)
	flag.Parse()

	nc := *cores
	if *mesh != "" {
		tiles, err := meshTiles(*mesh, *depth)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nocgen:", err)
			os.Exit(1)
		}
		nc = tiles
	}
	g, err := build(*embedded, *mode, *name, nc, *packets, *chains, *classes, *bits, *seed, *hotspot)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nocgen:", err)
		os.Exit(1)
	}
	switch *format {
	case "json":
		err = g.WriteJSON(os.Stdout)
	case "text":
		err = g.WriteText(os.Stdout)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "nocgen:", err)
		os.Exit(1)
	}
}

// meshTiles parses a WxH or WxHxD sizing spec and returns its tile count,
// stacking a planar spec by depth (an explicit WxHxD spec wins over
// -depth).
func meshTiles(spec string, depth int) (int, error) {
	w, h, d, err := topology.ParseGridSpec(spec)
	if err != nil {
		return 0, err
	}
	if d == 1 && depth > 1 {
		d = depth
	}
	return w * h * d, nil
}

func build(embedded, mode, name string, cores, packets, chains, classes int,
	bits, seed int64, hotspot float64) (*model.CDCG, error) {

	if embedded != "" {
		switch embedded {
		case "romberg":
			return apps.Romberg(cores-1, packets, bits)
		case "fft8":
			return apps.FFT8(false, packets, bits)
		case "fft8-gather":
			return apps.FFT8(true, packets, bits)
		case "objrec":
			return apps.ObjRecognition(cores, packets, bits)
		case "imgenc":
			return apps.ImageEncoder(cores, packets, bits)
		}
		return nil, fmt.Errorf("unknown embedded app %q", embedded)
	}
	var m appgen.Mode
	switch mode {
	case "chains":
		m = appgen.ModeChains
	case "phases":
		m = appgen.ModePhases
	default:
		return nil, fmt.Errorf("unknown mode %q", mode)
	}
	if name == "" {
		name = fmt.Sprintf("%s-c%d-p%d", mode, cores, packets)
	}
	return appgen.Generate(appgen.Params{
		Name: name, Mode: m, Cores: cores, Packets: packets,
		TotalBits: bits, Seed: seed, Chains: chains,
		HotspotBias: hotspot, VolumeClasses: classes,
	})
}
