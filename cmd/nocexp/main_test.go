package main

import "testing"

// The fast experiments run end to end through the CLI entry point.
func TestRunFastExperiments(t *testing.T) {
	for _, which := range []string{"table1", "fig1", "fig2", "fig3", "fig4", "fig5"} {
		if err := run(nil, which, 1, 0, 0, 0, 4, "mesh", 100, 10, 1, 2, 0.08, 2, false); err != nil {
			t.Fatalf("%s: %v", which, err)
		}
	}
}

func TestRunBoundedExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// Tight budgets keep these to a few seconds each.
	if err := run(nil, "table2", 1, 6, 10, 6, 4, "mesh", 100, 10, 1, 2, 0.08, 2, false); err != nil {
		t.Fatalf("table2: %v", err)
	}
	if err := run(nil, "esvssa", 1, 0, 0, 0, 4, "mesh", 800, 10, 1, 2, 0.08, 2, false); err != nil {
		t.Fatalf("esvssa: %v", err)
	}
	if err := run(nil, "sensitivity", 1, 0, 0, 6, 4, "mesh", 100, 20, 1, 2, 0.08, 2, false); err != nil {
		t.Fatalf("sensitivity: %v", err)
	}
	if err := run(nil, "ablation", 1, 6, 10, 6, 4, "mesh", 100, 10, 1, 2, 0.08, 2, false); err != nil {
		t.Fatalf("ablation: %v", err)
	}
	if err := run(nil, "buffers", 1, 6, 10, 6, 4, "mesh", 100, 10, 1, 2, 0.08, 2, false); err != nil {
		t.Fatalf("buffers: %v", err)
	}
	if err := run(nil, "vsrandom", 1, 0, 0, 6, 4, "mesh", 100, 15, 1, 2, 0.08, 2, false); err != nil {
		t.Fatalf("vsrandom: %v", err)
	}
	if err := run(nil, "dim3", 1, 6, 10, 0, 4, "mesh", 100, 10, 1, 2, 0.08, 2, false); err != nil {
		t.Fatalf("dim3: %v", err)
	}
	if err := run(nil, "resilience", 1, 6, 10, 0, 4, "mesh", 100, 10, 1, 2, 0.08, 2, false); err != nil {
		t.Fatalf("resilience: %v", err)
	}
	if err := run(nil, "resilience", 1, 6, 10, 0, 4, "mesh", 100, 10, 1, 2, 0.08, 3, false); err == nil {
		t.Fatal("resilience accepted an empty fault draw") // 0.08/seed 3 draws nothing on 4x4
	}
	if err := run(nil, "dim3", 1, 6, 10, 0, 2, "torus", 100, 10, 1, 2, 0.08, 2, false); err != nil {
		t.Fatalf("dim3 torus: %v", err)
	}
	if err := run(nil, "dim3", 1, 6, 10, 0, 4, "mesh", 100, 10, 1, 2, 0.08, 2, true); err != nil {
		t.Fatalf("dim3 surrogate: %v", err)
	}
	if err := run(nil, "dim3", 1, 6, 10, 0, 4, "moebius", 100, 10, 1, 2, 0.08, 2, false); err == nil {
		t.Fatal("dim3 accepted an unknown topology")
	}
}
