// Command nocexp regenerates the paper's tables and figures.
//
// Usage:
//
//	nocexp -exp table1                  # Table 1: workload suite summary
//	nocexp -exp table2 -seeds 3         # Table 2: CDCM vs CWM (ETR/ECS)
//	nocexp -exp fig1|fig2|fig3|fig4|fig5
//	nocexp -exp esvssa                  # ES certifies SA on small NoCs
//	nocexp -exp cputime                 # CWM vs CDCM evaluation cost
//	nocexp -exp vsrandom                # guided mapping vs random ([4])
//	nocexp -exp dim3 -depth 4           # 2D vs 3D: 4x4x1 vs 2x2x4, TSV-priced
//	nocexp -exp pareto                  # energy x latency Pareto front (CDCM components)
//	nocexp -exp resilience              # fault-blind vs resilience-aware mapping under injected faults
//	nocexp -exp all
//
// Every run is deterministic for a given -seed/-seeds: -workers only
// changes how many goroutines share the work, never the results. The
// CWM legs of every experiment price candidate swaps incrementally
// (search.DeltaObjective, bit-identical to full recomputes), so the
// large-mesh rows spend their time in the CDCM simulator, not in
// re-walking communication graphs.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/noc"
)

func main() {
	var (
		which    = flag.String("exp", "all", "experiment: table1, table2, fig1..fig5, esvssa, cputime, vsrandom, sensitivity, buffers, ablation, dim3, pareto, resilience, all")
		seeds    = flag.Int("seeds", 1, "number of search seeds to average over (table2)")
		steps    = flag.Int("steps", 0, "SA temperature steps (0 = default)")
		moves    = flag.Int("moves", 0, "SA moves per temperature (0 = default)")
		maxTiles = flag.Int("maxtiles", 0, "skip workloads on NoCs with more tiles (0 = none)")
		esMax    = flag.Int64("esmax", 50000, "max placements for exhaustive search (esvssa)")
		samples  = flag.Int("samples", 100, "random-mapping samples (vsrandom)")
		seed     = flag.Int64("seed", 1, "base random seed")
		workers  = flag.Int("workers", runtime.NumCPU(), "parallel worker goroutines (results are seed-deterministic for any value)")
		depth    = flag.Int("depth", 4, "Z depth of the 3D shape in the dim3 experiment (2x2xD vs 4x4x1)")
		topo     = flag.String("topology", "mesh", "grid family for the dim3 experiment: mesh or torus")
		frate    = flag.Float64("faultrate", 0.08, "link-failure probability for the resilience experiment")
		fseed    = flag.Int64("faultseed", 2, "fault-injection seed for the resilience experiment")
		surr     = flag.Bool("surrogate", false, "rank SA/pareto candidates on the calibrated tier-B surrogate (reported results stay exact-repriced)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, *which, *seeds, *steps, *moves, *maxTiles, *depth, *topo, *esMax, *samples, *seed, *workers, *frate, *fseed, *surr); err != nil {
		fmt.Fprintln(os.Stderr, "nocexp:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, which string, seeds, steps, moves, maxTiles, depth int, topo string, esMax int64, samples int, seed int64, workers int, faultRate float64, faultSeed int64, surrogate bool) error {
	suite, err := exp.Table1Suite()
	if err != nil {
		return err
	}
	seedList := make([]int64, seeds)
	for i := range seedList {
		seedList[i] = seed + int64(i)
	}

	do := func(name string) bool { return which == name || which == "all" }

	if do("table1") {
		fmt.Println(exp.RenderTable1(suite))
	}
	if do("fig1") || do("fig2") || do("fig3") || do("fig4") || do("fig5") || which == "all" {
		f, err := exp.NewFigureExample()
		if err != nil {
			return err
		}
		if do("fig1") {
			fmt.Println(f.RenderFigure1())
		}
		if do("fig2") {
			s, err := f.RenderFigure2()
			if err != nil {
				return err
			}
			fmt.Println(s)
		}
		if do("fig3") {
			fmt.Println(f.RenderFigure3())
		}
		if do("fig4") {
			fmt.Println(f.RenderFigure4())
		}
		if do("fig5") {
			fmt.Println(f.RenderFigure5())
		}
	}
	if do("table2") {
		// Parallelism goes to the batch level only: handing -workers to
		// Search.Workers as well would stack CompareModels' concurrent
		// legs on top of the already-saturated workload pool.
		rep, err := exp.RunTable2(suite, exp.Table2Options{
			Search:   core.Options{Method: core.MethodSA, TempSteps: steps, MovesPerTemp: moves, Surrogate: surrogate},
			Seeds:    seedList,
			MaxTiles: maxTiles,
			Workers:  workers,
		})
		if err != nil {
			return err
		}
		fmt.Println(rep.Render())
	}
	if do("esvssa") {
		outs, err := exp.RunESvsSA(suite, noc.Config{}, esMax, seed)
		if err != nil {
			return err
		}
		fmt.Println(exp.RenderESvsSA(outs))
	}
	if do("cputime") {
		outs, err := exp.RunCPUTime(suite, noc.Config{}, 30)
		if err != nil {
			return err
		}
		fmt.Println(exp.RenderCPUTime(outs))
	}
	if do("vsrandom") {
		outs, err := exp.RunVsRandom(suite, noc.Config{}, samples, seed)
		if err != nil {
			return err
		}
		fmt.Println(exp.RenderVsRandom(outs))
	}
	if which == "buffers" { // analysis extra: not part of "all"
		var small []exp.Workload
		for _, w := range suite {
			if maxTiles == 0 || w.MeshW*w.MeshH <= maxTiles {
				small = append(small, w)
			}
		}
		outs, err := exp.RunBuffers(small, noc.Config{}, nil,
			core.Options{Method: core.MethodSA, Seed: seed, TempSteps: steps, MovesPerTemp: moves, Workers: workers, Surrogate: surrogate})
		if err != nil {
			return err
		}
		fmt.Println(exp.RenderBuffers(outs))
	}
	if which == "ablation" { // analysis extra: not part of "all"
		var small []exp.Workload
		for _, w := range suite {
			if maxTiles == 0 || w.MeshW*w.MeshH <= maxTiles {
				small = append(small, w)
			}
		}
		outs, err := exp.RunAblations(small, nil,
			core.Options{Method: core.MethodSA, Seed: seed, TempSteps: steps, MovesPerTemp: moves, Workers: workers, Surrogate: surrogate})
		if err != nil {
			return err
		}
		fmt.Println(exp.RenderAblations(outs))
	}
	if which == "dim3" { // analysis extra: not part of "all"
		torus := false
		switch topo {
		case "mesh":
		case "torus":
			torus = true
		default:
			return fmt.Errorf("unknown topology %q (want mesh or torus)", topo)
		}
		if depth <= 0 {
			depth = 4
		}
		g, err := exp.Dim3Workload(4 * depth) // fill both 4·depth-tile shapes
		if err != nil {
			return err
		}
		outs, err := exp.RunDim3(g, exp.DefaultDim3Shapes(depth, torus), noc.Config{},
			core.Options{Method: core.MethodSA, Seed: seed, TempSteps: steps, MovesPerTemp: moves, Workers: workers, Surrogate: surrogate})
		if err != nil {
			return err
		}
		fmt.Println(exp.RenderDim3(outs))
	}
	if which == "pareto" { // analysis extra: not part of "all"
		g, err := exp.ParetoWorkload(0)
		if err != nil {
			return err
		}
		out, err := exp.RunPareto(g, 4, 4, noc.Config{},
			core.Options{Seed: seed, TempSteps: steps, MovesPerTemp: moves, Workers: workers, Ctx: ctx, Surrogate: surrogate})
		if err != nil {
			return err
		}
		fmt.Println(exp.RenderPareto(out))
	}
	if which == "resilience" { // analysis extra: not part of "all"
		g, err := exp.ParetoWorkload(0)
		if err != nil {
			return err
		}
		out, err := exp.RunResilience(g, 4, 4, noc.Config{},
			core.Options{Method: core.MethodSA, Seed: seed, TempSteps: steps, MovesPerTemp: moves, Workers: workers, Ctx: ctx, Surrogate: surrogate},
			faultRate, faultSeed)
		if err != nil {
			return err
		}
		fmt.Println(exp.RenderResilience(out))
	}
	if which == "sensitivity" { // analysis extra: not part of "all"
		var small []exp.Workload
		for _, w := range suite {
			if maxTiles == 0 || w.MeshW*w.MeshH <= maxTiles {
				small = append(small, w)
			}
		}
		outs, err := exp.RunSensitivity(ctx, small, noc.Config{}, samples, seed, workers)
		if err != nil {
			return err
		}
		fmt.Println(exp.RenderSensitivity(outs))
	}
	return nil
}
