# Make targets mirror the CI gates exactly: a clean `make check` locally
# means the blocking CI steps pass.

STATICCHECK_VERSION := 2025.1.1
GOVULNCHECK_VERSION := v1.1.4

.PHONY: build test race lint lint-offline nocvet staticcheck govulncheck check

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# nocvet is the project-specific gate: determinism (detmap, detsource),
# hot-path allocation (hotpath), cancellation (ctxflow) and lock
# discipline (mutexhold). See internal/analysis/doc.go.
nocvet:
	go run ./cmd/nocvet ./...
	go run ./cmd/nocvet -tests ./...

# staticcheck is pinned and configured by staticcheck.conf; `go run`
# fetches the pinned version on first use (needs network once).
staticcheck:
	go run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...

# govulncheck is report-only in CI: findings print but do not gate.
govulncheck:
	go run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./... || true

# lint is the blocking CI lint step, verbatim.
lint: nocvet
	go vet ./...
	$(MAKE) staticcheck

# lint-offline is lint minus the tools that need a module download —
# everything in it runs from a cold cache with no network.
lint-offline: nocvet
	go vet ./...

check: build lint test race
