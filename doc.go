// Package repro reproduces "Exploring NoC Mapping Strategies: An Energy
// and Timing Aware Technique" (Marcon, Calazans, Moraes, Susin, Reis,
// Hessel — DATE 2005) as a production-quality Go library.
//
// The library implements the paper's FRW mapping-exploration framework:
// the CWM (communication weighted) and CDCM (communication dependence and
// computation) application models, a contention-aware wormhole NoC timing
// simulator, the dynamic+static energy model, simulated-annealing and
// exhaustive mapping search, the TGFF-like benchmark generator and the
// four embedded applications of the evaluation, plus the harness that
// regenerates every table and figure of the paper.
//
// Exploration is parallel end to end: simulated annealing runs as a
// deterministic multi-restart (search.MultiAnnealer), exhaustive search
// shards its enumeration space by the first core's tile
// (search.ShardedExhaustive), the Table-2 comparison protocol
// (core.CompareModels) runs its independent legs concurrently, and the
// experiment harness batches workloads over the worker pool in
// internal/par. Worker count is a pure wall-clock lever: for a fixed
// seed, results are bit-identical for every Workers value.
//
// The search hot path is fast in two model-specific ways. CWM implements
// search.DeltaObjective (Reset / SwapDelta / Commit), pricing a proposed
// tile swap in O(deg) over per-core adjacency lists instead of re-walking
// all |E| edges. Because EDyNoC is linear in the integer traffic
// aggregate Σ w·K, the incremental path is bit-identical to full
// recomputes — the annealer, hill climber and tabu search take it
// automatically and return the same Best mapping either way, ~5.6x
// faster per evaluation on an 8x8/16-core instance and further ahead as
// instances grow (see README "Incremental (delta) evaluation"). CDCM
// keeps the full simulator path — contention is global, so no cheap swap
// delta exists — but that simulation is allocation-free in steady state:
// wormhole.Simulator precomputes the full route table and dense
// port/link adjacency tables once and is immutable afterwards, while all
// mutable run state (busy lists, event heap, reusable Result backing)
// lives in a per-lane wormhole.Scratch. core.CDCM.Clone hands each
// search worker its own scratch lane over the shared simulator core, so
// parallel CDCM-objective searches scale with Workers and stay
// bit-identical to the serial path. Per-resource occupancy recording is
// opt-in (Simulator/Scratch RecordOccupancy) and only enabled by the
// trace/Gantt renderers (see README "Allocation-free CDCM evaluation").
//
// On top of the simulator sits two-tier CDCM evaluation
// (search.TieredObjective). Tier A is a certified lower bound: the
// exact dynamic energy plus static energy over the uncontended
// critical path is provably ≤ the simulated contended cost, so the
// strict-improvement engines (hill climber, tabu) skip any swap whose
// bound already fails the incumbent without running the simulator —
// always on under core.Explore, bit-identical by construction, and
// allocation-free (//nocvet:noalloc) on the bound-compare path. Tier B
// is an opt-in calibrated surrogate (core.Options.Surrogate, default
// off) for SA and ParetoSA: an analytic predictor least-squares-fitted
// per instance against a deterministic, seed-keyed sample of exact
// simulations, used to rank Metropolis candidates so only accepted
// moves — and the final Best and every Pareto front point — are priced
// on the simulator. The determinism contract extends to both tiers:
// tier A never changes Best, BestCost or the accept/reject trajectory
// (pinned bitwise against the unfiltered engines), and tier B fits its
// surrogate once before workers fan out, so results remain
// bit-identical for every Workers value and every reported number is
// an exact simulator price, never a surrogate estimate. Search results
// split Evaluations into ExactEvals + BoundSkips + SurrogateEvals
// (the sum invariant holds in every Result, progress snapshot and
// telemetry block). See README "Two-tier CDCM evaluation".
//
// The scalar cost the paper optimises is one point of a trade-off curve,
// and the framework can report the whole curve: both evaluators implement
// search.VectorObjective, exposing named component axes (CWM: dynamic
// energy and an uncontended hop-latency aggregate; CDCM: dynamic energy,
// static energy and simulated texec) whose weighted collapse equals the
// scalar Cost bit for bit — so every scalar engine, golden and delta
// path is untouched by the vector seam. search.ParetoSA approximates the
// energy×latency Pareto front with archived weight-swept annealing walks
// over a dominance archive with crowding-based pruning; fronts are
// deterministic for a fixed seed whatever the worker count, every front
// point exact-reprices on a fresh evaluator, and the front flows through
// core.Explore (core.StrategyPareto), the service schema, `nocmap -model
// pareto` and `nocexp -exp pareto`. mapping.SeedGreedy provides a
// deterministic highest-traffic-first constructive placement that can
// warm-start any seeded engine (core.Options.SeedGreedy); a seeded run
// never finishes worse than its seed. See README "Multi-objective
// search".
//
// The framework also runs as a long-lived service: internal/service plus
// cmd/nocd expose submission, status, cancellation and progress streaming
// over HTTP/JSON, with a bounded job queue on the internal/par pool and
// an LRU result cache keyed by a canonical instance hash
// (model.CDCG.Hash + service.Instance.Key). Every search engine accepts
// an optional context.Context and progress callback; the nil-context
// path is bit-identical to the batch behaviour, so CLI runs, tests and
// daemon jobs share one search code path. Results are deterministic
// under a fixed seed and the service result schema carries no wall-clock
// state, which makes cached, deduplicated and freshly computed responses
// byte-identical — the invariant the cache is built on.
//
// Topologies cover planar and stacked grids: W×H meshes and tori are the
// D=1 case of W×H×D (topology.NewMesh3D / NewTorus3D), with vertical
// through-silicon-via (TSV) links between layers, dimension-ordered
// XY/YX/XYZ/ZYX routing, a TSV per-bit energy coefficient
// (energy.Tech.ETSVbit) and a TSV per-flit latency
// (noc.Config.TSVLinkCycles). Depth-1 grids are bit-identical to the
// original 2-D model end to end; the K-symmetry invariant the delta
// evaluator needs holds across the whole family, so incremental
// evaluation stays exact on 3-D instances. The dim3 experiment
// (internal/exp, `nocexp -exp dim3`) compares the same application on a
// planar grid and an equal-tile-count 3-D stack.
//
// Faults are first-class: topology.FaultSet marks failed links, routers
// and TSVs over any grid (enumerated explicitly or drawn by
// topology.GenerateFaults from a rate and seed), and
// topology.RouteFault computes fault-aware routes — the dimension-ordered
// route when it is clean, else a deadlock-safe negative-first detour,
// else an unrestricted escape path, else topology.ErrUnreachable. The
// fault-aware contract is deterministic end to end: routes depend only
// on (grid, fault set, algorithm) — never on map order, timing or worker
// count — wormhole.NewSimulatorFaults precomputes them into the same
// flattened route table the intact simulator uses (a nil fault set is
// bit-identical to NewSimulator, pinned by test), and the
// core.Resilience objective prices a mapping as intact energy plus its
// worst-case texec over single-fault scenarios, with unreachable
// scenarios charged a documented penalty
// (core.UnreachablePenaltyFactor × intact texec) instead of failing the
// search. core.Explore scores any strategy's winner over the run's
// fault set (core.ExploreResult.Resilience) and
// core.StrategyResilience optimises for it; the report flows through
// the service schema, `nocmap -model resilience -faultrate` and
// `nocexp -exp resilience`. See README "Fault injection and resilience".
//
// Layout:
//
//	internal/graph      DAG utilities
//	internal/model      CWG and CDCG application models (Definitions 1-2)
//	internal/topology   2-D/3-D mesh/torus topology and dimension-ordered
//	                    XY/YX/XYZ/ZYX routing (Definition 3 + TSV extension)
//	internal/noc        NoC architecture configuration (tr, tl, λ, flits)
//	internal/wormhole   timed, contention-aware wormhole simulator
//	internal/energy     bit-energy model and technology profiles (eqs. 1-10)
//	internal/mapping    core→tile placements, moves, enumeration
//	internal/par        deterministic bounded worker pool (batch + daemon Pool)
//	internal/search     SA / exhaustive / hill / random / tabu engines,
//	                    parallel multi-restart and sharded enumeration,
//	                    context cancellation and progress callbacks
//	internal/core       the FRW framework: CWM & CDCM strategies (the contribution)
//	internal/service    mapping-as-a-service: job queue, instance cache, HTTP API
//	internal/appgen     TGFF-like CDCG benchmark generator
//	internal/apps       Romberg, FFT-8, object recognition, image encoder
//	internal/trace      timing diagrams and annotated-CRG rendering
//	internal/exp        regeneration of every table and figure
//	internal/analysis   project-specific static analyzers (the nocvet suite)
//	cmd/nocmap          map one application onto a NoC
//	cmd/nocgen          generate benchmark CDCGs
//	cmd/nocexp          reproduce the paper's tables and figures
//	cmd/nocd            the mapping daemon (HTTP/JSON API over internal/service)
//	cmd/nocvet          run the static-analysis suite (blocking in CI)
//	examples/...        runnable walk-throughs
//
// The invariants above — bit-identical results for every worker count,
// allocation-free steady-state hot paths, cancellation through every
// engine, unlock-before-send in the service layer — are enforced
// statically as well as by tests: the nocvet suite (internal/analysis,
// run via `go run ./cmd/nocvet ./...` or `make lint`) rejects code that
// leaks map iteration order into results, reads nondeterministic inputs
// inside engine packages, allocates inside //nocvet:noalloc functions,
// drops the context on a fan-out, or blocks while holding a service
// mutex. See internal/analysis/doc.go for the contract and the
// annotation grammar.
//
// See README.md for a tour. The benchmarks in bench_test.go regenerate
// each table and figure under `go test -bench`, and the Workers1/WorkersN
// benchmark pairs measure the parallel runner's wall-clock win.
package repro
