// Package repro reproduces "Exploring NoC Mapping Strategies: An Energy
// and Timing Aware Technique" (Marcon, Calazans, Moraes, Susin, Reis,
// Hessel — DATE 2005) as a production-quality Go library.
//
// The library implements the paper's FRW mapping-exploration framework:
// the CWM (communication weighted) and CDCM (communication dependence and
// computation) application models, a contention-aware wormhole NoC timing
// simulator, the dynamic+static energy model, simulated-annealing and
// exhaustive mapping search, the TGFF-like benchmark generator and the
// four embedded applications of the evaluation, plus the harness that
// regenerates every table and figure of the paper.
//
// Layout:
//
//	internal/graph      DAG utilities
//	internal/model      CWG and CDCG application models (Definitions 1-2)
//	internal/topology   mesh/torus topology and XY/YX routing (Definition 3)
//	internal/noc        NoC architecture configuration (tr, tl, λ, flits)
//	internal/wormhole   timed, contention-aware wormhole simulator
//	internal/energy     bit-energy model and technology profiles (eqs. 1-10)
//	internal/mapping    core→tile placements, moves, enumeration
//	internal/search     SA / exhaustive / hill / random / tabu engines
//	internal/core       the FRW framework: CWM & CDCM strategies (the contribution)
//	internal/appgen     TGFF-like CDCG benchmark generator
//	internal/apps       Romberg, FFT-8, object recognition, image encoder
//	internal/trace      timing diagrams and annotated-CRG rendering
//	internal/exp        regeneration of every table and figure
//	cmd/nocmap          map one application onto a NoC
//	cmd/nocgen          generate benchmark CDCGs
//	cmd/nocexp          reproduce the paper's tables and figures
//	examples/...        runnable walk-throughs
//
// See README.md for a tour, DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-vs-measured results. The benchmarks in
// bench_test.go regenerate each table and figure under `go test -bench`.
package repro
