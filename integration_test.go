package repro_test

// End-to-end integration tests across the whole stack: generator →
// models → search → simulator → pricing → rendering.

import (
	"strings"
	"testing"

	"repro/internal/appgen"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/exp"
	"repro/internal/model"
	"repro/internal/noc"
	"repro/internal/topology"
	"repro/internal/trace"
)

// A generated application goes through the full pipeline; the CDCM winner
// must never lose to the CWM winner on the CDCM objective (the seeded
// restart guarantees it), and all rendered artefacts must be non-trivial.
func TestEndToEndGeneratedApplication(t *testing.T) {
	g, err := appgen.Generate(appgen.Params{
		Name: "e2e", Mode: appgen.ModePhases,
		Cores: 8, Packets: 40, TotalBits: 20000, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	mesh, err := topology.NewMesh(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := noc.Default()
	cmp, err := core.CompareModels(mesh, cfg, g, core.CompareOptions{
		Options: core.Options{Method: core.MethodSA, Seed: 9, TempSteps: 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, tech := range []string{"0.35um", "0.07um"} {
		if cmp.ECS[tech] < 0 {
			t.Errorf("CDCM lost at %s: ECS = %g", tech, cmp.ECS[tech])
		}
		if cmp.CDCMMetrics[tech].ExecCycles <= 0 {
			t.Errorf("no metrics at %s", tech)
		}
	}

	cdcm, err := core.NewCDCM(mesh, cfg, energy.Tech007, g)
	if err != nil {
		t.Fatal(err)
	}
	cdcm.Simulator().RecordOccupancy = true
	raw, metrics, err := cdcm.Simulate(cmp.CDCMMappings["0.07um"])
	if err != nil {
		t.Fatal(err)
	}
	if metrics.ExecCycles != raw.ExecCycles {
		t.Fatal("metrics and raw result disagree")
	}
	gantt := trace.Gantt(g, cfg, raw, 100)
	if strings.Count(gantt, "\n") < g.NumPackets() {
		t.Fatalf("Gantt too small:\n%s", gantt)
	}
	ann := trace.AnnotateSchedule(mesh, g, cmp.CDCMMappings["0.07um"], raw)
	if !strings.Contains(ann, "router t1") {
		t.Fatalf("annotation too small:\n%s", ann)
	}
}

// The whole comparison protocol is deterministic: same seeds, same
// results across repeated runs.
func TestEndToEndDeterminism(t *testing.T) {
	g := model.PaperExampleCDCG()
	mesh, _ := topology.NewMesh(2, 2)
	opts := core.CompareOptions{Options: core.Options{Method: core.MethodSA, Seed: 4, TempSteps: 15}}
	first, err := core.CompareModels(mesh, noc.PaperExample(), g, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := core.CompareModels(mesh, noc.PaperExample(), g, opts)
		if err != nil {
			t.Fatal(err)
		}
		if again.ETR != first.ETR || again.ECS["0.07um"] != first.ECS["0.07um"] {
			t.Fatalf("run %d diverged: %+v vs %+v", i, again, first)
		}
	}
}

// The four embedded applications each survive the full pipeline on their
// Table-1 meshes.
func TestEndToEndEmbeddedApps(t *testing.T) {
	suite, err := exp.Table1Suite()
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range suite {
		if !w.Embedded {
			continue
		}
		mesh, err := w.Mesh()
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Explore(core.StrategyCDCM, mesh, noc.Default(), energy.Tech007, w.G,
			core.Options{Method: core.MethodSA, Seed: 1, TempSteps: 10, MovesPerTemp: 20})
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		lb, err := w.G.ComputeLowerBound()
		if err != nil {
			t.Fatal(err)
		}
		if res.Metrics.ExecCycles < lb {
			t.Fatalf("%s: texec %d below dependence bound %d", w.Name, res.Metrics.ExecCycles, lb)
		}
	}
}
