package repro_test

// One benchmark per table and figure of the paper (see DESIGN.md §6 for
// the experiment index). Custom metrics carry the reproduced quantities:
//
//	go test -bench=. -benchmem
//
// BenchmarkTable2_* report etr_pct / ecs035_pct / ecs007_pct per NoC
// size; BenchmarkCPUTimeRatio reports the CDCM/CWM evaluation cost ratio
// (Section 5); BenchmarkVsRandom reports the guided-vs-random saving of
// reference [4].

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/appgen"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/exp"
	"repro/internal/mapping"
	"repro/internal/model"
	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/search"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/wormhole"
)

var (
	suiteOnce sync.Once
	suite     []exp.Workload
	suiteErr  error
)

func table1Suite(b *testing.B) []exp.Workload {
	b.Helper()
	suiteOnce.Do(func() { suite, suiteErr = exp.Table1Suite() })
	if suiteErr != nil {
		b.Fatal(suiteErr)
	}
	return suite
}

// BenchmarkTable1Suite regenerates the 18-workload suite of Table 1.
func BenchmarkTable1Suite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := exp.Table1Suite()
		if err != nil {
			b.Fatal(err)
		}
		if len(s) != 18 {
			b.Fatalf("suite = %d workloads", len(s))
		}
	}
}

// benchTable2Size runs the Table-2 protocol for one NoC-size row and
// reports the reproduced ETR/ECS as custom metrics.
func benchTable2Size(b *testing.B, size string, budget core.Options) {
	all := table1Suite(b)
	var ws []exp.Workload
	for _, w := range all {
		if w.NoCSize() == size {
			ws = append(ws, w)
		}
	}
	if len(ws) == 0 {
		b.Fatalf("no workloads of size %s", size)
	}
	var rep *exp.Table2Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = exp.RunTable2(ws, exp.Table2Options{
			Search: budget,
			Seeds:  []int64{1},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	row := rep.Rows[0]
	b.ReportMetric(row.ETR*100, "etr_pct")
	b.ReportMetric(row.ECS["0.35um"]*100, "ecs035_pct")
	b.ReportMetric(row.ECS["0.07um"]*100, "ecs007_pct")
}

// The eight Table-2 rows. Small sizes use the harness defaults; the large
// meshes use a bounded annealing budget so a bench iteration stays in the
// tens of seconds (the full-budget numbers are in EXPERIMENTS.md, from
// cmd/nocexp).
func BenchmarkTable2_3x2(b *testing.B) { benchTable2Size(b, "3x2", core.Options{}) }
func BenchmarkTable2_2x4(b *testing.B) { benchTable2Size(b, "2x4", core.Options{}) }
func BenchmarkTable2_3x3(b *testing.B) { benchTable2Size(b, "3x3", core.Options{}) }
func BenchmarkTable2_2x5(b *testing.B) { benchTable2Size(b, "2x5", core.Options{}) }
func BenchmarkTable2_3x4(b *testing.B) { benchTable2Size(b, "3x4", core.Options{}) }

func largeBudget(tiles int) core.Options {
	return core.Options{
		Method:       core.MethodSA,
		TempSteps:    80,
		MovesPerTemp: 5 * tiles,
		StallSteps:   20,
		Reheats:      1,
	}
}

func BenchmarkTable2_8x8(b *testing.B)   { benchTable2Size(b, "8x8", largeBudget(64)) }
func BenchmarkTable2_10x10(b *testing.B) { benchTable2Size(b, "10x10", largeBudget(100)) }
func BenchmarkTable2_12x10(b *testing.B) { benchTable2Size(b, "12x10", largeBudget(120)) }

// BenchmarkFigure2CWMEvaluation measures the CWM objective on the paper
// example (the Figure-2 computation).
func BenchmarkFigure2CWMEvaluation(b *testing.B) {
	mesh, _ := topology.NewMesh(2, 2)
	cwm, err := core.NewCWM(mesh, noc.PaperExample(), energy.PaperExample(),
		model.PaperExampleCWG())
	if err != nil {
		b.Fatal(err)
	}
	mp := mapping.Mapping{1, 0, 3, 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cwm.Cost(mp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3CDCMEvaluation measures the CDCM simulation of the
// paper example (the Figure-3 computation: 6 packets, contention, texec)
// on the search engines' evaluation hot path: one warm scratch per lane,
// allocation-free in steady state (RunScratch).
func BenchmarkFigure3CDCMEvaluation(b *testing.B) {
	mesh, _ := topology.NewMesh(2, 2)
	sim, err := wormhole.NewSimulator(mesh, noc.PaperExample(), model.PaperExampleCDCG())
	if err != nil {
		b.Fatal(err)
	}
	mp := mapping.Mapping{1, 0, 3, 2}
	sc := sim.NewScratch()
	if _, err := sim.RunScratch(mp, sc); err != nil { // warm the scratch
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.RunScratch(mp, sc)
		if err != nil {
			b.Fatal(err)
		}
		if res.ExecCycles != 100 {
			b.Fatalf("texec = %d", res.ExecCycles)
		}
	}
}

// BenchmarkFigure4Gantt renders the Figure-4 timing diagram.
func BenchmarkFigure4Gantt(b *testing.B) {
	mesh, _ := topology.NewMesh(2, 2)
	cfg := noc.PaperExample()
	g := model.PaperExampleCDCG()
	sim, err := wormhole.NewSimulator(mesh, cfg, g)
	if err != nil {
		b.Fatal(err)
	}
	res, err := sim.Run(mapping.Mapping{1, 0, 3, 2})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := trace.Gantt(g, cfg, res, 100); len(out) == 0 {
			b.Fatal("empty diagram")
		}
	}
}

// BenchmarkEvaluatorCWM / BenchmarkEvaluatorCDCM measure per-evaluation
// cost on a large Table-1 instance (the Section-5 CPU-time comparison).
func largeInstance(b *testing.B) (*topology.Mesh, noc.Config, *model.CDCG) {
	b.Helper()
	for _, w := range table1Suite(b) {
		if w.Name == "tgff-12x10" {
			mesh, err := w.Mesh()
			if err != nil {
				b.Fatal(err)
			}
			return mesh, noc.Default(), w.G
		}
	}
	b.Fatal("tgff-12x10 missing")
	return nil, noc.Config{}, nil
}

func BenchmarkEvaluatorCWM(b *testing.B) {
	mesh, cfg, g := largeInstance(b)
	cwm, err := core.NewCWM(mesh, cfg, energy.Tech007, g.ToCWG())
	if err != nil {
		b.Fatal(err)
	}
	mp := mapping.Identity(g.NumCores())
	if _, err := cwm.Cost(mp); err != nil { // warm route cache
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cwm.Cost(mp); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluatorCDCM(b *testing.B) {
	mesh, cfg, g := largeInstance(b)
	cdcm, err := core.NewCDCM(mesh, cfg, energy.Tech007, g)
	if err != nil {
		b.Fatal(err)
	}
	mp := mapping.Identity(g.NumCores())
	if _, err := cdcm.Cost(mp); err != nil { // warm the scratch
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cdcm.Cost(mp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInstrumentedEval prices the observability layer's hot-path
// instrumentation: the same large-instance CWM/CDCM evaluations as
// above, bare versus with the evaluation counter attached (what every
// nocd job wires through core.Options.EvalCounter — one atomic add per
// evaluation). The instrumented paths must stay allocation-free, and
// the budget for the counted-over-bare slowdown is two percent; CI
// uploads this benchmark as its own artifact to track that margin.
func BenchmarkInstrumentedEval(b *testing.B) {
	mesh, cfg, g := largeInstance(b)
	runCWM := func(b *testing.B, evals *obs.Counter) {
		cwm, err := core.NewCWM(mesh, cfg, energy.Tech007, g.ToCWG())
		if err != nil {
			b.Fatal(err)
		}
		cwm.Evals = evals
		mp := mapping.Identity(g.NumCores())
		if _, err := cwm.Cost(mp); err != nil { // warm route cache
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cwm.Cost(mp); err != nil {
				b.Fatal(err)
			}
		}
	}
	runCDCM := func(b *testing.B, evals *obs.Counter) {
		cdcm, err := core.NewCDCM(mesh, cfg, energy.Tech007, g)
		if err != nil {
			b.Fatal(err)
		}
		cdcm.Evals = evals
		mp := mapping.Identity(g.NumCores())
		if _, err := cdcm.Cost(mp); err != nil { // warm the scratch
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cdcm.Cost(mp); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("CWMBare", func(b *testing.B) { runCWM(b, nil) })
	b.Run("CWMCounted", func(b *testing.B) { runCWM(b, new(obs.Counter)) })
	b.Run("CDCMBare", func(b *testing.B) { runCDCM(b, nil) })
	b.Run("CDCMCounted", func(b *testing.B) { runCDCM(b, new(obs.Counter)) })
}

// BenchmarkEvaluatorCDCMParallel measures concurrent CDCM evaluation of
// the same large instance: one shared simulator core, one clone (scratch)
// per goroutine — the configuration every parallel search engine runs.
func BenchmarkEvaluatorCDCMParallel(b *testing.B) {
	mesh, cfg, g := largeInstance(b)
	cdcm, err := core.NewCDCM(mesh, cfg, energy.Tech007, g)
	if err != nil {
		b.Fatal(err)
	}
	mp := mapping.Identity(g.NumCores())
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		lane := cdcm.Clone()
		for pb.Next() {
			if _, err := lane.Cost(mp); err != nil {
				// Fatal must not run off the benchmark goroutine.
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkCPUTimeRatio reports the measured CDCM/CWM per-evaluation cost
// ratio across the small workloads (Section 5's "worst case took only 23%
// more CPU time" claim; see EXPERIMENTS.md for why our ratio differs).
func BenchmarkCPUTimeRatio(b *testing.B) {
	all := table1Suite(b)
	var small []exp.Workload
	for _, w := range all {
		if w.MeshW*w.MeshH <= 12 {
			small = append(small, w)
		}
	}
	var worst float64
	for i := 0; i < b.N; i++ {
		outs, err := exp.RunCPUTime(small, noc.Config{}, 20)
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, o := range outs {
			if o.Ratio > worst {
				worst = o.Ratio
			}
		}
	}
	b.ReportMetric(worst, "worst_cdcm_over_cwm")
}

// BenchmarkExhaustiveVsSA certifies SA against exhaustive search on a
// small instance (the Section-5 small-NoC observation).
func BenchmarkExhaustiveVsSA(b *testing.B) {
	all := table1Suite(b)
	var ws []exp.Workload
	for _, w := range all {
		if w.NoCSize() == "3x2" {
			ws = append(ws, w)
		}
	}
	var matches, total int
	for i := 0; i < b.N; i++ {
		outs, err := exp.RunESvsSA(ws, noc.Config{}, 1000, 1)
		if err != nil {
			b.Fatal(err)
		}
		matches, total = 0, len(outs)
		for _, o := range outs {
			if o.SAMatches {
				matches++
			}
		}
	}
	b.ReportMetric(float64(matches)/float64(total)*100, "sa_optimal_pct")
}

// BenchmarkVsRandom reports the guided-vs-random-mapping energy saving
// (the >60% claim of reference [4]).
func BenchmarkVsRandom(b *testing.B) {
	all := table1Suite(b)
	var ws []exp.Workload
	for _, w := range all {
		if w.MeshW*w.MeshH <= 12 {
			ws = append(ws, w)
		}
	}
	var avg float64
	for i := 0; i < b.N; i++ {
		outs, err := exp.RunVsRandom(ws, noc.Config{}, 60, 1)
		if err != nil {
			b.Fatal(err)
		}
		avg = 0
		for _, o := range outs {
			avg += o.Saving
		}
		avg /= float64(len(outs))
	}
	b.ReportMetric(avg*100, "saving_pct")
}

// BenchmarkAnnealer measures annealing throughput on a mid-size CDCM
// problem (the framework's hot loop).
func BenchmarkAnnealer(b *testing.B) {
	all := table1Suite(b)
	var w exp.Workload
	for _, cand := range all {
		if cand.Name == "fft8-gather" {
			w = cand
		}
	}
	mesh, err := w.Mesh()
	if err != nil {
		b.Fatal(err)
	}
	cdcm, err := core.NewCDCM(mesh, noc.Default(), energy.Tech007, w.G)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := (&search.Annealer{
			Problem:   search.Problem{Mesh: mesh, NumCores: w.G.NumCores(), Obj: cdcm},
			Seed:      int64(i),
			TempSteps: 30,
		}).Run()
		if err != nil {
			b.Fatal(err)
		}
	}
}

// parallelInstance is the workers=1-vs-N benchmark workload: a generated
// 8-core app with parallel dependence chains on a 4x4 mesh (half-empty,
// so swaps move cores across real distance and contention varies with
// placement).
func parallelInstance(b *testing.B) (*topology.Mesh, noc.Config, *model.CDCG) {
	b.Helper()
	mesh, err := topology.NewMesh(4, 4)
	if err != nil {
		b.Fatal(err)
	}
	g, err := appgen.Generate(appgen.Params{
		Name: "bench-8core", Cores: 8, Packets: 64, TotalBits: 40000, Seed: 42, Chains: 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	return mesh, noc.Default(), g
}

// benchCompareModels runs the full Table-2 protocol on the 4x4 instance
// with the given worker count. With workers=1 every leg runs serially;
// with workers=NumCPU the CWM leg and both per-tech CDCM explorations
// run concurrently, which is where the >=2x wall-clock win comes from on
// multi-core hardware (the result itself is bit-identical either way —
// see TestCompareModelsDeterministicAcrossWorkers).
func benchCompareModels(b *testing.B, workers int) {
	mesh, cfg, g := parallelInstance(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cmp, err := core.CompareModels(mesh, cfg, g, core.CompareOptions{
			Options: core.Options{
				Method: core.MethodSA, Seed: 1, TempSteps: 40, Workers: workers,
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(cmp.CDCMMappings) == 0 {
			b.Fatal("empty comparison")
		}
	}
}

func BenchmarkCompareModelsWorkers1(b *testing.B) { benchCompareModels(b, 1) }
func BenchmarkCompareModelsWorkersN(b *testing.B) { benchCompareModels(b, runtime.NumCPU()) }

// benchMultiRestartSA runs an 8-restart CDCM annealing on the 4x4
// instance. Restarts are fixed, so workers=1 and workers=N do the same
// work and find the same mapping; N workers split the restarts.
func benchMultiRestartSA(b *testing.B, workers int) {
	mesh, cfg, g := parallelInstance(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Explore(core.StrategyCDCM, mesh, cfg, energy.Tech007, g, core.Options{
			Method: core.MethodSA, Seed: 1, TempSteps: 30, Restarts: 8, Workers: workers,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Search.BestCost <= 0 {
			b.Fatal("no cost")
		}
	}
}

func BenchmarkMultiRestartSAWorkers1(b *testing.B) { benchMultiRestartSA(b, 1) }
func BenchmarkMultiRestartSAWorkersN(b *testing.B) { benchMultiRestartSA(b, runtime.NumCPU()) }

// benchShardedES certifies the optimum for 5 cores on a 3x3 mesh
// (9!/4! = 15120 placements) under the CWM objective, serial vs sharded.
func benchShardedES(b *testing.B, workers int) {
	mesh, err := topology.NewMesh(3, 3)
	if err != nil {
		b.Fatal(err)
	}
	g, err := appgen.Generate(appgen.Params{
		Name: "bench-5core", Cores: 5, Packets: 24, TotalBits: 9000, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Explore(core.StrategyCWM, mesh, noc.Default(), energy.Tech007, g,
			core.Options{Method: core.MethodES, Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Search.Certified {
			b.Fatal("not certified")
		}
	}
}

func BenchmarkShardedESWorkers1(b *testing.B) { benchShardedES(b, 1) }
func BenchmarkShardedESWorkersN(b *testing.B) { benchShardedES(b, runtime.NumCPU()) }

// deltaBenchInstance is the incremental-evaluation benchmark workload: a
// 16-core generated app on the given mesh (8x8 for the headline pair). A
// quarter-full mesh makes swaps move cores across real distance, and the
// communication-heavy app (768 packets over 232 of the 240 possible core
// pairs) makes the O(|E|) full walk carry its production-scale weight
// against the O(deg) delta path.
func deltaBenchInstance(b *testing.B, w, h, cores, packets int) (*topology.Mesh, *core.CWM) {
	b.Helper()
	mesh, err := topology.NewMesh(w, h)
	if err != nil {
		b.Fatal(err)
	}
	g, err := appgen.Generate(appgen.Params{
		Name: "bench-delta", Cores: cores, Packets: packets,
		TotalBits: int64(packets) * 625, Seed: 42, Chains: cores / 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	cwm, err := core.NewCWM(mesh, noc.Default(), energy.Tech007, g.ToCWG())
	if err != nil {
		b.Fatal(err)
	}
	return mesh, cwm
}

// benchAnnealCWMEval measures the annealer's move-evaluation hot path —
// the operation the DeltaObjective subsystem replaces — by replaying the
// annealer's own proposal distribution (first tile via a uniform core,
// second uniform over the remaining tiles) against a fixed walk state on
// the 8x8/16-core instance. The full-recompute path must materialise each
// proposal to price it (swap, full Cost, swap back); the delta path asks
// SwapDelta for the O(deg) incremental price. Each benchmark op is one
// proposal evaluation.
func benchAnnealCWMEval(b *testing.B, delta bool) {
	mesh, cwm := deltaBenchInstance(b, 8, 8, 16, 768)
	numTiles := mesh.NumTiles()
	rng := rand.New(rand.NewSource(9))
	mp, err := mapping.Random(rng, cwm.G.NumCores(), numTiles)
	if err != nil {
		b.Fatal(err)
	}
	occ := mp.Occupants(numTiles)
	cost, err := cwm.Reset(mp)
	if err != nil {
		b.Fatal(err)
	}
	// Pre-generate the proposal stream so rng cost stays out of the
	// measurement, and replay it once before the timer to warm the route
	// cache exactly as a real run would.
	type prop struct{ ta, tb topology.TileID }
	props := make([]prop, 4096)
	for i := range props {
		for {
			ta := mp[rng.Intn(len(mp))]
			tb := topology.TileID(rng.Intn(numTiles))
			if ta != tb {
				props[i] = prop{ta, tb}
				break
			}
		}
	}
	warm := func() {
		for _, pr := range props {
			if _, err := cwm.SwapDelta(occ, pr.ta, pr.tb); err != nil {
				b.Fatal(err)
			}
		}
	}
	warm()
	b.ResetTimer()
	if delta {
		for i := 0; i < b.N; i++ {
			pr := props[i&4095]
			if _, err := cwm.SwapDelta(occ, pr.ta, pr.tb); err != nil {
				b.Fatal(err)
			}
		}
		return
	}
	for i := 0; i < b.N; i++ {
		pr := props[i&4095]
		mapping.SwapTiles(mp, occ, pr.ta, pr.tb)
		c, err := cwm.Cost(mp)
		mapping.SwapTiles(mp, occ, pr.ta, pr.tb)
		if err != nil {
			b.Fatal(err)
		}
		_ = c
	}
	_ = cost
}

// BenchmarkAnnealCWMFullEval / BenchmarkAnnealCWMDeltaEval are the
// headline pair of the incremental-evaluation subsystem: the per-proposal
// pricing cost on the 8x8 mesh, 16-core instance (delta ≥ 5x faster; see
// README "Incremental evaluation" for measured numbers). The runs below
// confirm the two paths return bit-identical results end to end.
func BenchmarkAnnealCWMFullEval(b *testing.B)  { benchAnnealCWMEval(b, false) }
func BenchmarkAnnealCWMDeltaEval(b *testing.B) { benchAnnealCWMEval(b, true) }

// benchAnnealCWMRun anneals a CWM instance end to end. delta=true hands
// the engine the CWM itself (it type-asserts search.DeltaObjective and
// prices each move in O(deg)); delta=false hides the interface behind an
// ObjectiveFunc, forcing the historical full-recompute path. Both runs
// are seeded identically and produce bit-identical Best mappings — see
// TestEnginesDeltaVsFullEquivalence. Whole-run ratios sit below the
// per-evaluation ratio because the engine's own per-move work (proposal
// draws, Metropolis test, state swaps) is untouched by the delta path;
// the larger the instance, the closer the run ratio gets to the
// evaluation ratio.
func benchAnnealCWMRun(b *testing.B, w, h, cores, packets int, delta bool) {
	mesh, cwm := deltaBenchInstance(b, w, h, cores, packets)
	var obj search.Objective = cwm
	if !delta {
		obj = search.ObjectiveFunc(cwm.Cost)
	}
	prob := search.Problem{Mesh: mesh, NumCores: cwm.G.NumCores(), Obj: obj}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := (&search.Annealer{Problem: prob, Seed: 1, TempSteps: 30}).Run()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Evaluations), "evals")
	}
}

func BenchmarkAnnealCWMRunFull(b *testing.B)  { benchAnnealCWMRun(b, 8, 8, 16, 768, false) }
func BenchmarkAnnealCWMRunDelta(b *testing.B) { benchAnnealCWMRun(b, 8, 8, 16, 768, true) }

// The 16x16/64-core pair shows the asymptotics: with more cores the
// affected-edge share of a swap shrinks, so the whole-run win grows.
func BenchmarkAnnealCWMLargeRunFull(b *testing.B)  { benchAnnealCWMRun(b, 16, 16, 64, 1024, false) }
func BenchmarkAnnealCWMLargeRunDelta(b *testing.B) { benchAnnealCWMRun(b, 16, 16, 64, 1024, true) }

// benchHillCWM measures the hill climber's O(n²) neighbourhood scan on
// the 8x8/16-core instance — the engine where incremental pricing pays
// off most, because the scan is almost pure evaluation.
func benchHillCWM(b *testing.B, delta bool) {
	mesh, cwm := deltaBenchInstance(b, 8, 8, 16, 768)
	var obj search.Objective = cwm
	if !delta {
		obj = search.ObjectiveFunc(cwm.Cost)
	}
	prob := search.Problem{Mesh: mesh, NumCores: cwm.G.NumCores(), Obj: obj}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (&search.HillClimber{Problem: prob, Seed: 1, Restarts: 1}).Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHillCWMFull(b *testing.B)  { benchHillCWM(b, false) }
func BenchmarkHillCWMDelta(b *testing.B) { benchHillCWM(b, true) }

// BenchmarkParetoFrontCWM runs the Pareto front engine directly over the
// CWM vector objective (dynamic energy × uncontended hop latency) on the
// 8x8/16-core delta instance — the front engine's evaluation hot loop
// over the cheap evaluator, so engine overhead (archive offers, weight
// scalarisation) dominates the profile.
func BenchmarkParetoFrontCWM(b *testing.B) {
	mesh, cwm := deltaBenchInstance(b, 8, 8, 16, 768)
	prob := search.Problem{Mesh: mesh, NumCores: cwm.G.NumCores(), Obj: cwm}
	b.ReportAllocs()
	b.ResetTimer()
	var pts int
	for i := 0; i < b.N; i++ {
		front, err := (&search.ParetoSA{Problem: prob, Seed: 1, Walks: 4, TempSteps: 20}).Run()
		if err != nil {
			b.Fatal(err)
		}
		pts = len(front.Points)
	}
	b.ReportMetric(float64(pts), "front_points")
}

// BenchmarkParetoFrontCDCM is the production configuration: the archived
// multi-walk exploration over CDCM's (dynamic, static, texec) components
// on the 4x4/8-core instance, parallel walks on clone lanes — what
// `nocmap -model pareto` runs.
func BenchmarkParetoFrontCDCM(b *testing.B) {
	mesh, cfg, g := parallelInstance(b)
	b.ReportAllocs()
	b.ResetTimer()
	var pts int
	for i := 0; i < b.N; i++ {
		res, err := core.Explore(core.StrategyPareto, mesh, cfg, energy.Tech007, g, core.Options{
			Seed: 1, TempSteps: 20, Restarts: 6, Workers: runtime.NumCPU(),
		})
		if err != nil {
			b.Fatal(err)
		}
		pts = len(res.Front.Points)
	}
	b.ReportMetric(float64(pts), "front_points")
}

// BenchmarkTieredSearchCDCM is the two-tier evaluation headline: CDCM
// searches end to end, single-tier (every candidate fully simulated,
// the pre-two-tier behaviour) versus tier-A (certified lower-bound
// filter, bit-identical results) versus tier-A+B (opt-in calibrated
// surrogate with exact repricing of survivors). Two instances: the
// paper's Figure-3 example (2x2, light contention — the bound skips
// most of the hill climber's neighbourhood) and the largest Table-1
// workload (12x10 mesh, 99 cores — each exact simulation costs ~200µs,
// so pricing Metropolis candidates on the surrogate and simulating only
// accepted moves is a multi-x end-to-end win; CI uploads the pairs as
// BENCH_twotier.json and the >=2x margin is tracked on the large SA
// pair). Hill legs pin the skip and exact counters so a bound
// regression that silently stops filtering fails the benchmark, not
// just the trend line.
func BenchmarkTieredSearchCDCM(b *testing.B) {
	fig3 := func(b *testing.B) (*topology.Mesh, noc.Config, *model.CDCG) {
		b.Helper()
		mesh, err := topology.NewMesh(2, 2)
		if err != nil {
			b.Fatal(err)
		}
		return mesh, noc.PaperExample(), model.PaperExampleCDCG()
	}
	// The large SA schedule: fast cooling keeps the cold (low-acceptance)
	// phase long, which is where tier B pays — rejected candidates never
	// reach the simulator.
	saBudget := core.Options{
		Method: core.MethodSA, Seed: 1,
		TempSteps: 40, MovesPerTemp: 120, Alpha: 0.7,
		SurrogateSamples: 16,
	}

	b.Run("Figure3HillSingleTier", func(b *testing.B) {
		mesh, cfg, g := fig3(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cdcm, err := core.NewCDCM(mesh, cfg, energy.PaperExample(), g)
			if err != nil {
				b.Fatal(err)
			}
			prob := search.Problem{Mesh: mesh, NumCores: g.NumCores(), Obj: cdcm}
			res, err := (&search.HillClimber{Problem: prob, Seed: 1}).Run()
			if err != nil {
				b.Fatal(err)
			}
			if res.BoundSkips != 0 || res.ExactEvals != res.Evaluations {
				b.Fatalf("bare engine reports tier counters: %+v", res)
			}
		}
	})
	b.Run("Figure3HillTierA", func(b *testing.B) {
		mesh, cfg, g := fig3(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := core.Explore(core.StrategyCDCM, mesh, cfg, energy.PaperExample(), g,
				core.Options{Method: core.MethodHill, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			if res.Search.BoundSkips == 0 {
				b.Fatal("tier-A bound never fired on Figure 3")
			}
			if i == 0 {
				b.ReportMetric(float64(res.Search.BoundSkips), "skips")
				b.ReportMetric(float64(res.Search.ExactEvals), "exact")
			}
		}
	})

	tieredSA := func(b *testing.B, mesh *topology.Mesh, cfg noc.Config, tech energy.Tech, g *model.CDCG, surrogate bool) {
		opts := saBudget
		opts.Surrogate = surrogate
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := core.Explore(core.StrategyCDCM, mesh, cfg, tech, g, opts)
			if err != nil {
				b.Fatal(err)
			}
			if surrogate == (res.Search.SurrogateEvals == 0) {
				b.Fatalf("surrogate=%v but SurrogateEvals=%d", surrogate, res.Search.SurrogateEvals)
			}
			if i == 0 {
				b.ReportMetric(float64(res.Search.ExactEvals), "exact")
			}
		}
	}
	b.Run("Figure3SASingleTier", func(b *testing.B) {
		mesh, cfg, g := fig3(b)
		tieredSA(b, mesh, cfg, energy.PaperExample(), g, false)
	})
	b.Run("Figure3SATierB", func(b *testing.B) {
		mesh, cfg, g := fig3(b)
		tieredSA(b, mesh, cfg, energy.PaperExample(), g, true)
	})
	b.Run("Large12x10SASingleTier", func(b *testing.B) {
		mesh, cfg, g := largeInstance(b)
		tieredSA(b, mesh, cfg, energy.Tech007, g, false)
	})
	b.Run("Large12x10SATierB", func(b *testing.B) {
		mesh, cfg, g := largeInstance(b)
		tieredSA(b, mesh, cfg, energy.Tech007, g, true)
	})
}

// BenchmarkWormholeSimLarge measures one CDCM simulation of the largest
// Table-1 instance (99 cores, 446 packets on 12x10).
func BenchmarkWormholeSimLarge(b *testing.B) {
	mesh, cfg, g := largeInstance(b)
	sim, err := wormhole.NewSimulator(mesh, cfg, g)
	if err != nil {
		b.Fatal(err)
	}
	mp := mapping.Identity(g.NumCores())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(mp); err != nil {
			b.Fatal(err)
		}
	}
}
