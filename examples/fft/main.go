// FFT example: map the 8-point FFT (plus a result collector) onto a 3x3
// mesh and compare the CWM and CDCM strategies.
//
// The FFT's butterfly exchanges are synchronised waves of equal-sized
// packets — the workload class where volume-only mapping (CWM) is blind:
// many placements tie on dynamic energy while differing hugely in
// contention. The CDCM strategy sees the waves and finds a mapping that
// runs the butterflies with far less blocking.
//
// Run with: go run ./examples/fft
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/noc"
	"repro/internal/topology"
	"repro/internal/trace"
)

func main() {
	// The fft8-gather instance of the Table-1 suite: 9 cores, 32 packets,
	// 43120 bits in total.
	g, err := apps.FFT8(true, 32, 43120)
	if err != nil {
		log.Fatal(err)
	}
	mesh, err := topology.NewMesh(3, 3)
	if err != nil {
		log.Fatal(err)
	}
	cfg := noc.Default()

	cmp, err := core.CompareModels(mesh, cfg, g, core.CompareOptions{
		Options: core.Options{Method: core.MethodSA, Seed: 42},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("application: %s — %d cores, %d packets, %d bits\n\n",
		g.Name, g.NumCores(), g.NumPackets(), g.TotalBits())

	fmt.Println("CWM winner (volume only):")
	fmt.Print(trace.MappingGrid(mesh, g.CoreName, cmp.CWMMapping))
	w := cmp.CWMMetrics["0.07um"]
	fmt.Printf("  texec %d cycles, contention %d cycles, ENoC(0.07um) %.4g pJ\n\n",
		w.ExecCycles, w.ContentionCycles, w.Total()*1e12)

	fmt.Println("CDCM winner (dependence + computation aware, 0.07um):")
	fmt.Print(trace.MappingGrid(mesh, g.CoreName, cmp.CDCMMappings["0.07um"]))
	d := cmp.CDCMMetrics["0.07um"]
	fmt.Printf("  texec %d cycles, contention %d cycles, ENoC(0.07um) %.4g pJ\n\n",
		d.ExecCycles, d.ContentionCycles, d.Total()*1e12)

	fmt.Printf("execution-time reduction (ETR): %.1f %%\n", cmp.ETR*100)
	fmt.Printf("energy savings: %.2f %% at 0.35um, %.2f %% at 0.07um\n",
		cmp.ECS["0.35um"]*100, cmp.ECS["0.07um"]*100)

	// Show where the CWM mapping loses its time: the timing diagram of
	// the butterfly waves under the volume-only placement.
	cdcm, err := core.NewCDCM(mesh, cfg, energy.Tech007, g)
	if err != nil {
		log.Fatal(err)
	}
	cdcm.Simulator().RecordOccupancy = true
	raw, _, err := cdcm.Simulate(cmp.CWMMapping)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nCWM mapping timing (note the contention marks 'x'):")
	fmt.Print(trace.Gantt(g, cfg, raw, 100))
}
