// Quickstart: the paper's Section 4.1 worked example, end to end.
//
// It builds the Figure-1 application (4 cores, 6 packets on a 2x2 NoC),
// evaluates the two published mappings under both models, and regenerates
// Figures 2-5: CWM cannot tell the mappings apart (390 pJ both), while
// CDCM exposes the 100 ns vs 90 ns execution-time difference and the
// 400 pJ vs 399 pJ total energy gap.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/exp"
)

func main() {
	f, err := exp.NewFigureExample()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== The application and the two mappings (Figure 1) ===")
	fmt.Println(f.RenderFigure1())

	fmt.Println("=== CWM evaluation (Figure 2): both mappings look identical ===")
	fig2, err := f.RenderFigure2()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fig2)

	fmt.Println("=== CDCM evaluation (Figure 3): time and total energy differ ===")
	fmt.Println(f.RenderFigure3())

	fmt.Println("=== Timing diagrams (Figures 4 and 5) ===")
	fmt.Println(f.RenderFigure4())
	fmt.Println(f.RenderFigure5())

	// Finally, let the framework search the whole 24-mapping space under
	// the CDCM objective: exhaustive search certifies that the paper's
	// mapping (b) is in fact a global optimum.
	res, err := core.Explore(core.StrategyCDCM, f.Mesh, f.Cfg, f.Tech, f.G,
		core.Options{Method: core.MethodES})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=== Exhaustive search over all %d placements ===\n", res.Search.Evaluations)
	fmt.Printf("certified optimum: %.4g pJ at texec %d ns (paper mapping (b): 399 pJ, 90 ns)\n",
		res.Search.BestCost*1e12, res.Metrics.ExecCycles)
}
