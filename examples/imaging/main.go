// Imaging example: the object-recognition pipeline on a 2x5 mesh, priced
// under both technology profiles, plus the delivery-arbitration ablation.
//
// The pipeline streams frames through camera → preprocessing →
// segmentation → five parallel feature extractors (which exchange the
// boundary strips of their overlapping regions) → classifier → display.
// The run shows how the same pair of mappings is priced under 0.35um and
// 0.07um constants: at 0.35um leakage is negligible and the CWM/CDCM gap
// in energy nearly vanishes; at 0.07um the execution-time reduction
// converts into real energy savings (the paper's core claim).
//
// Run with: go run ./examples/imaging
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/noc"
	"repro/internal/topology"
	"repro/internal/trace"
)

func main() {
	// The objrec-wide instance of the Table-1 suite: 10 cores, 22
	// packets, 322221 bits (two camera frames through the pipeline).
	g, err := apps.ObjRecognition(10, 22, 322221)
	if err != nil {
		log.Fatal(err)
	}
	mesh, err := topology.NewMesh(2, 5)
	if err != nil {
		log.Fatal(err)
	}
	cfg := noc.Default()

	cmp, err := core.CompareModels(mesh, cfg, g, core.CompareOptions{
		Options: core.Options{Method: core.MethodSA, Seed: 7},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("application: %s — %d cores, %d packets, %d bits\n\n",
		g.Name, g.NumCores(), g.NumPackets(), g.TotalBits())
	fmt.Println("CWM winner:")
	fmt.Print(trace.MappingGrid(mesh, g.CoreName, cmp.CWMMapping))

	rows := [][]string{}
	for _, tech := range []energy.Tech{energy.Tech035, energy.Tech007} {
		mw := cmp.CWMMetrics[tech.Name]
		md := cmp.CDCMMetrics[tech.Name]
		rows = append(rows, []string{
			tech.Name,
			fmt.Sprintf("%d", mw.ExecCycles),
			fmt.Sprintf("%d", md.ExecCycles),
			fmt.Sprintf("%.4g", mw.Total()*1e12),
			fmt.Sprintf("%.4g", md.Total()*1e12),
			fmt.Sprintf("%.1f %%", mw.Energy.StaticShare()*100),
			fmt.Sprintf("%.2f %%", cmp.ECS[tech.Name]*100),
		})
	}
	fmt.Println()
	fmt.Print(trace.Table(
		[]string{"tech", "t_cwm (cy)", "t_cdcm (cy)", "E_cwm (pJ)", "E_cdcm (pJ)", "leakage share", "ECS"},
		rows))
	fmt.Printf("\nexecution-time reduction (ETR): %.1f %%\n\n", cmp.ETR*100)

	// Ablation: what if the router→core delivery path were arbitrated
	// like the inter-tile ports? (The paper's model does not arbitrate
	// it — Figure 3(b) shows overlapping deliveries.)
	abl := cfg
	abl.ArbitrateLocal = true
	cdcm, err := core.NewCDCM(mesh, abl, energy.Tech007, g)
	if err != nil {
		log.Fatal(err)
	}
	m, err := cdcm.Evaluate(cmp.CDCMMappings["0.07um"])
	if err != nil {
		log.Fatal(err)
	}
	base := cmp.CDCMMetrics["0.07um"]
	fmt.Printf("ablation — arbitrated delivery path: texec %d cycles (paper model: %d), contention %d (paper model: %d)\n",
		m.ExecCycles, base.ExecCycles, m.ContentionCycles, base.ContentionCycles)
}
