// Romberg example: the distributed Romberg integration (binary
// scatter/reduce tree with a per-round extrapolation barrier) mapped onto
// a 2x5 mesh, with exhaustive search certifying the annealer.
//
// Hierarchical tree traffic is the hard case for timing-aware mapping:
// minimising bits×hops already pulls the tree together, so the CWM/CDCM
// gap is smaller than for symmetric workloads like the FFT — running both
// examples shows that contrast (the suite-level numbers live in
// EXPERIMENTS.md).
//
// Run with: go run ./examples/romberg
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/mapping"
	"repro/internal/noc"
	"repro/internal/topology"
	"repro/internal/trace"
)

func main() {
	// The romberg-8w instance of the Table-1 suite: a root and 8 workers,
	// 51 packets, 23244 bits.
	g, err := apps.Romberg(8, 51, 23244)
	if err != nil {
		log.Fatal(err)
	}
	mesh, err := topology.NewMesh(2, 5)
	if err != nil {
		log.Fatal(err)
	}
	cfg := noc.Default()
	tech := energy.Tech007

	// Simulated annealing under the CDCM objective...
	sa, err := core.Explore(core.StrategyCDCM, mesh, cfg, tech, g,
		core.Options{Method: core.MethodSA, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SA best: %.6g pJ after %d evaluations\n",
		sa.Search.BestCost*1e12, sa.Search.Evaluations)
	fmt.Print(trace.MappingGrid(mesh, g.CoreName, sa.Best))
	fmt.Printf("texec %d cycles, contention %d cycles\n\n",
		sa.Metrics.ExecCycles, sa.Metrics.ContentionCycles)

	// ...certified by (truncated) exhaustive search with a symmetry
	// anchor. 9 cores on 10 tiles is 10!/1! placements; the anchor pins
	// the root to the canonical quadrant, and a budget keeps the demo
	// quick while still scanning a large sample.
	es, err := core.Explore(core.StrategyCDCM, mesh, cfg, tech, g, core.Options{
		Method:   core.MethodES,
		ESAnchor: true,
		ESLimit:  150000,
	})
	if err != nil {
		log.Fatal(err)
	}
	cert := "certified global optimum"
	if !es.Search.Certified {
		cert = fmt.Sprintf("best of %d enumerated placements", es.Search.Evaluations)
	}
	fmt.Printf("ES: %.6g pJ (%s)\n", es.Search.BestCost*1e12, cert)
	if sa.Search.BestCost <= es.Search.BestCost*1.001 {
		fmt.Println("SA matched exhaustive search — the paper's small-NoC observation.")
	} else {
		fmt.Printf("SA is %.2f %% above the enumerated best.\n",
			(sa.Search.BestCost/es.Search.BestCost-1)*100)
	}

	// For contrast: how bad is a random placement?
	worst, err := core.NewCDCM(mesh, cfg, tech, g)
	if err != nil {
		log.Fatal(err)
	}
	id := mapping.Identity(g.NumCores())
	m, err := worst.Evaluate(id)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnaive identity placement: %.6g pJ, texec %d cycles (%.1f %% above SA)\n",
		m.Total()*1e12, m.ExecCycles, (m.Total()/sa.Search.BestCost-1)*100)
}
