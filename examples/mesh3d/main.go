// Mesh3d: mapping one application onto a planar grid and onto an
// equal-tile-count 3-D stack.
//
// It generates a 16-core phase-synchronised benchmark, explores it with
// simulated annealing under the CDCM objective on a 4x4x1 mesh and on a
// 2x2x4 stacked mesh (same 16 tiles, vertical TSV links between layers),
// and prints both winners side by side. Folding the grid shortens
// average Manhattan distance — the diameter drops from 6 to 5 and most
// tile pairs get closer — which cuts router traversals (dynamic energy)
// and avoidable contention (execution time, hence static energy). The
// vertical links the fold introduces are priced separately: per-bit TSV
// energy (energy.Tech.ETSVbit, well below the planar ELbit) and per-flit
// TSV latency (noc.Config.TSVLinkCycles).
//
// Run with: go run ./examples/mesh3d
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/exp"
	"repro/internal/noc"
	"repro/internal/topology"
	"repro/internal/trace"
)

func main() {
	g, err := exp.Dim3Workload(16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("application: %s (%d cores, %d packets, %d bits)\n\n",
		g.Name, g.NumCores(), g.NumPackets(), g.TotalBits())

	cfg := noc.Default()
	cfg.Routing = topology.RouteXYZ // X, then Y, then Z — the paper's XY plus a vertical leg
	cfg.TSVLinkCycles = 1           // TSVs are short; keep them as fast as planar links

	for _, shape := range []struct {
		name    string
		w, h, d int
	}{
		{"planar 4x4x1", 4, 4, 1},
		{"stacked 2x2x4", 2, 2, 4},
	} {
		mesh, err := topology.NewMesh3D(shape.w, shape.h, shape.d)
		if err != nil {
			log.Fatal(err)
		}
		res, err := core.Explore(core.StrategyCDCM, mesh, cfg, energy.Tech007, g,
			core.Options{Method: core.MethodSA, Seed: 7, TempSteps: 60, MovesPerTemp: 160})
		if err != nil {
			log.Fatal(err)
		}
		met := res.Metrics
		fmt.Printf("=== %s (%d tiles, %d links) ===\n", shape.name, mesh.NumTiles(), mesh.NumLinks())
		fmt.Print(trace.MappingGrid(mesh, g.CoreName, res.Best))
		fmt.Printf("texec = %d cycles, contention = %d cycles\n", met.ExecCycles, met.ContentionCycles)
		fmt.Printf("energy: dynamic %.5g pJ + static %.5g pJ = %.5g pJ (TSV traffic: %d bits)\n\n",
			met.Energy.Dynamic*1e12, met.Energy.Static*1e12, met.Total()*1e12, met.TSVBits)
	}

	fmt.Println("The full experiment (both models, CSV-stable table):")
	fmt.Println("  go run ./cmd/nocexp -exp dim3 -depth 4")
}
