// Sweep example: a miniature Table 2 — run the CWM-vs-CDCM protocol over
// the small-NoC portion of the workload suite and print the per-size
// ETR/ECS rows plus the measured leakage shares.
//
// Run with: go run ./examples/sweep           (small NoCs, ~seconds)
//
// The full-suite regeneration (all 18 workloads, large meshes, several
// seeds) lives in cmd/nocexp and bench_test.go.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/exp"
)

func main() {
	suite, err := exp.Table1Suite()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(exp.RenderTable1(suite))

	rep, err := exp.RunTable2(suite, exp.Table2Options{
		Search:   core.Options{Method: core.MethodSA},
		Seeds:    []int64{1, 2},
		MaxTiles: 12, // small NoCs only; the full sweep is cmd/nocexp's job
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep.Render())

	// Per-workload detail: where does the CDCM win come from?
	fmt.Println("per-run detail (0.07um):")
	for _, o := range rep.Outcomes {
		fmt.Printf("  %-16s seed %d: texec %7d -> %7d cycles (ETR %5.1f %%), contention %7d -> %7d\n",
			o.Workload, o.Seed, o.CWMExecCycles, o.CDCMExecCycles, o.ETR*100,
			o.CWMContention, o.CDCMContention)
	}
}
