// Customapp example: describe your own application in the hand-written
// CDCG text format (the paper notes CDCGs "are described by hand"), then
// explore mappings for it.
//
// The application below is a small audio codec: a sample source feeds two
// channel filters in parallel, a joint-stereo stage couples them, and an
// entropy coder drains into an output streamer. Two frames pipeline
// through.
//
// Run with: go run ./examples/customapp
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/model"
	"repro/internal/noc"
	"repro/internal/topology"
	"repro/internal/trace"
)

const codec = `
name audio-codec
cores src filtL filtR joint coder out

# frame 0
packet inL0 src  filtL compute=8  bits=480
packet inR0 src  filtR compute=8  bits=480
packet fL0  filtL joint compute=60 bits=240 after=inL0
packet fR0  filtR joint compute=60 bits=240 after=inR0
packet js0  joint coder compute=90 bits=300 after=fL0,fR0
packet bs0  coder out   compute=40 bits=120 after=js0

# frame 1 pipelines behind frame 0 stage by stage
packet inL1 src  filtL compute=8  bits=480 after=inL0
packet inR1 src  filtR compute=8  bits=480 after=inR0
packet fL1  filtL joint compute=60 bits=240 after=inL1,fL0
packet fR1  filtR joint compute=60 bits=240 after=inR1,fR0
packet js1  joint coder compute=90 bits=300 after=fL1,fR1,js0
packet bs1  coder out   compute=40 bits=120 after=js1,bs0
`

func main() {
	g, err := model.ParseText(strings.NewReader(codec))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed %q: %d cores, %d packets, %d bits\n\n",
		g.Name, g.NumCores(), g.NumPackets(), g.TotalBits())

	mesh, err := topology.NewMesh(3, 2)
	if err != nil {
		log.Fatal(err)
	}
	cfg := noc.Default()

	// Explore under both strategies and show what the dependence model
	// buys on a hand-written application.
	cmp, err := core.CompareModels(mesh, cfg, g, core.CompareOptions{
		Options: core.Options{Method: core.MethodES}, // 6!=720: enumerate
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("CWM optimum:")
	fmt.Print(trace.MappingGrid(mesh, g.CoreName, cmp.CWMMapping))
	fmt.Printf("  texec %d cycles\n\n", cmp.CWMMetrics["0.07um"].ExecCycles)
	fmt.Println("CDCM optimum (0.07um):")
	fmt.Print(trace.MappingGrid(mesh, g.CoreName, cmp.CDCMMappings["0.07um"]))
	fmt.Printf("  texec %d cycles\n\n", cmp.CDCMMetrics["0.07um"].ExecCycles)
	fmt.Printf("ETR %.1f %%, ECS(0.35um) %.2f %%, ECS(0.07um) %.2f %%\n",
		cmp.ETR*100, cmp.ECS["0.35um"]*100, cmp.ECS["0.07um"]*100)
	if cmp.ETR == 0 {
		fmt.Println("(a linear pipeline is the timing-insensitive regime: the volume")
		fmt.Println(" optimum is already contention-free — run examples/fft for the")
		fmt.Println(" opposite, butterfly-parallel regime where CDCM wins big)")
	}

	// Gantt of the CDCM winner.
	cdcm, err := core.NewCDCM(mesh, cfg, energy.Tech007, g)
	if err != nil {
		log.Fatal(err)
	}
	raw, _, err := cdcm.Simulate(cmp.CDCMMappings["0.07um"])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(trace.Gantt(g, cfg, raw, 100))
}
